// Sequence-indexed data structures for the per-ACK transport hot path.
//
// Transport sequence numbers are dense and monotonic, and the set of
// in-flight sequences lives in a sliding window bounded by the congestion
// window.  That makes node-based containers (std::map / std::set — one
// heap cell and a pointer chase per packet) the wrong shape: both
// structures below are power-of-two rings addressed by `seq & mask`, so
// find/insert/erase are O(1) array operations and the steady-state ACK
// path performs no heap allocation.  Rings grow on demand (doubling and
// re-placing the live window) when a sender's window outruns the current
// capacity, so growth cost amortizes to nothing.
//
//   * SeqRing<T>   — sliding-window map seq -> T (the sender's outstanding
//     packet tracking; replaces std::map<uint64_t, SentRecord>).
//   * SeqScoreboard — sliding-window bitset of received-out-of-order
//     sequences (the receiver's SACK scoreboard; replaces
//     std::set<uint64_t>).
// NIMBUS_HOT_PATH file
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace nimbus::sim {

/// Sliding-window map from a dense, window-bounded set of sequence numbers
/// to T.  Occupied sequences always lie in [lowest(), upper()) and that
/// span never exceeds capacity(), so `seq & mask` is collision-free.
template <typename T>
class SeqRing {
 public:
  explicit SeqRing(std::size_t initial_capacity = 64) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap *= 2;
    // detlint:allow(R5): construction-time presize, not steady-state growth
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }

  bool contains(std::uint64_t seq) const {
    const Slot& s = slots_[seq & mask_];
    return s.occupied && s.seq == seq;
  }

  T* find(std::uint64_t seq) {
    Slot& s = slots_[seq & mask_];
    return s.occupied && s.seq == seq ? &s.value : nullptr;
  }

  /// Inserts `seq` (must not be present).
  void insert(std::uint64_t seq, T value) {
    std::uint64_t nlo = count_ == 0 ? seq : (seq < lo_ ? seq : lo_);
    std::uint64_t nhi = count_ == 0 ? seq + 1 : (seq + 1 > hi_ ? seq + 1 : hi_);
    // detlint:allow(R5): doubling growth, amortized away once the window
    if (nhi - nlo > slots_.size()) grow(nhi - nlo);
    Slot& s = slots_[seq & mask_];
    NIMBUS_CHECK_MSG(!s.occupied, "SeqRing double insert");
    s.occupied = true;
    s.seq = seq;
    s.value = std::move(value);
    lo_ = nlo;
    hi_ = nhi;
    ++count_;
  }

  /// Erases `seq` if present; returns whether it was.
  bool erase(std::uint64_t seq) {
    Slot& s = slots_[seq & mask_];
    if (!s.occupied || s.seq != seq) return false;
    s.occupied = false;
    --count_;
    if (count_ == 0) {
      lo_ = hi_ = 0;
      return true;
    }
    // Keep [lo_, hi_) tight so growth only triggers when the live window
    // really exceeds capacity.  Both walks amortize against insertions
    // (each bound moves past a given sequence at most once per insert).
    if (seq == lo_) {
      while (!slots_[lo_ & mask_].occupied) ++lo_;
    }
    if (seq + 1 == hi_) {
      while (!slots_[(hi_ - 1) & mask_].occupied) --hi_;
    }
    return true;
  }

  /// Smallest occupied sequence (requires !empty()).
  std::uint64_t lowest() const {
    NIMBUS_CHECK(count_ > 0);
    return lo_;
  }

  /// One past the largest occupied sequence (0 when empty).
  std::uint64_t upper() const { return hi_; }

  /// Calls f(seq, value&) for every occupied seq in [from, to), ascending.
  /// f may erase the sequence it was called with (but no other).
  template <typename F>
  void for_each_in(std::uint64_t from, std::uint64_t to, F&& f) {
    if (count_ == 0) return;
    std::uint64_t s = from > lo_ ? from : lo_;
    const std::uint64_t end = to < hi_ ? to : hi_;
    for (; s < end; ++s) {
      Slot& slot = slots_[s & mask_];
      if (slot.occupied && slot.seq == s) f(s, slot.value);
    }
  }

  void clear() {
    if (count_ > 0) {
      for (std::uint64_t s = lo_; s < hi_; ++s) {
        slots_[s & mask_].occupied = false;
      }
    }
    lo_ = hi_ = 0;
    count_ = 0;
  }

 private:
  struct Slot {
    T value{};
    std::uint64_t seq = 0;
    bool occupied = false;
  };

  void grow(std::uint64_t min_span) {
    std::size_t cap = slots_.size() * 2;
    while (cap < min_span) cap *= 2;
    std::vector<Slot> next(cap);
    const std::uint64_t nmask = cap - 1;
    for (std::uint64_t s = lo_; s < hi_; ++s) {
      Slot& old = slots_[s & mask_];
      if (old.occupied && old.seq == s) next[s & nmask] = std::move(old);
    }
    slots_ = std::move(next);
    mask_ = nmask;
  }

  std::vector<Slot> slots_;  // power-of-two size
  std::uint64_t mask_;
  std::uint64_t lo_ = 0;  // smallest occupied seq (when count_ > 0)
  std::uint64_t hi_ = 0;  // one past the largest occupied seq
  std::size_t count_ = 0;
};

/// Sliding-window bitset of sequence numbers, for the receiver's SACK
/// scoreboard: sequences received above the cumulative point.  All set
/// bits lie in [base, base + capacity_bits); the caller advances `base`
/// (rcv_next) monotonically and clears bits as the cumulative point
/// consumes them.
class SeqScoreboard {
 public:
  explicit SeqScoreboard(std::size_t initial_bits = 1024) {
    std::size_t bits = 64;
    while (bits < initial_bits) bits *= 2;
    // detlint:allow(R5): construction-time presize, not steady-state growth
    words_.resize(bits / 64, 0);
    bitmask_ = bits - 1;
  }

  std::size_t count() const { return count_; }
  std::size_t capacity_bits() const { return words_.size() * 64; }

  bool test(std::uint64_t seq) const {
    const std::uint64_t b = seq & bitmask_;
    return (words_[b >> 6] >> (b & 63)) & 1;
  }

  /// Marks `seq` (idempotent).  `seq - base` must be < capacity_bits();
  /// call ensure_span(base, seq) first.
  void set(std::uint64_t seq) {
    const std::uint64_t b = seq & bitmask_;
    const std::uint64_t bit = std::uint64_t{1} << (b & 63);
    if ((words_[b >> 6] & bit) == 0) {
      words_[b >> 6] |= bit;
      ++count_;
    }
  }

  void clear(std::uint64_t seq) {
    const std::uint64_t b = seq & bitmask_;
    const std::uint64_t bit = std::uint64_t{1} << (b & 63);
    if ((words_[b >> 6] & bit) != 0) {
      words_[b >> 6] &= ~bit;
      --count_;
    }
  }

  /// Grows the bitset until `seq` fits in the window starting at `base`
  /// (the current cumulative point).  Set bits — all in
  /// (base, base + old_capacity) — are re-placed for the new mask.
  void ensure_span(std::uint64_t base, std::uint64_t seq) {
    if (seq - base < capacity_bits()) return;
    const std::size_t old_bits = capacity_bits();
    std::size_t bits = old_bits * 2;
    while (seq - base >= bits) bits *= 2;
    std::vector<std::uint64_t> next(bits / 64, 0);
    const std::uint64_t nmask = bits - 1;
    std::size_t moved = 0;
    for (std::uint64_t s = base + 1; moved < count_ && s < base + old_bits;
         ++s) {
      if (test(s)) {
        const std::uint64_t b = s & nmask;
        next[b >> 6] |= std::uint64_t{1} << (b & 63);
        ++moved;
      }
    }
    NIMBUS_CHECK_MSG(moved == count_, "SeqScoreboard lost bits in growth");
    words_ = std::move(next);
    bitmask_ = nmask;
  }

 private:
  std::vector<std::uint64_t> words_;  // power-of-two bit count
  std::uint64_t bitmask_;
  std::size_t count_ = 0;
};

}  // namespace nimbus::sim
