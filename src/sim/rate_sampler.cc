#include "sim/rate_sampler.h"

#include <algorithm>

namespace nimbus::sim {

void RateSampler::on_ack(TimeNs sent_at, TimeNs acked_at,
                         std::uint32_t bytes) {
  samples_.push_back({sent_at, acked_at, bytes});
  if (samples_.size() > max_history_) samples_.pop_front();
}

RateSampler::Rates RateSampler::rates(std::size_t n_packets) const {
  Rates out;
  n_packets = std::min(n_packets, samples_.size());
  if (n_packets < std::max<std::size_t>(2, min_packets_)) return out;

  const std::size_t first = samples_.size() - n_packets;
  const Sample& a = samples_[first];
  const Sample& b = samples_.back();

  // Eq. (2): n_bytes spans the n-1 inter-packet gaps between the first and
  // last sample, so sum the bytes of packets after the first.
  std::int64_t n_bytes = 0;
  for (std::size_t i = first + 1; i < samples_.size(); ++i) {
    n_bytes += samples_[i].bytes;
  }
  const TimeNs send_span = b.sent_at - a.sent_at;
  const TimeNs recv_span = b.acked_at - a.acked_at;
  if (send_span <= 0 || recv_span <= 0 || n_bytes <= 0) return out;

  out.send_bps = static_cast<double>(n_bytes) * 8.0 / to_sec(send_span);
  out.recv_bps = static_cast<double>(n_bytes) * 8.0 / to_sec(recv_span);
  out.valid = true;
  return out;
}

RateSampler::Rates RateSampler::rates_over_window(double cwnd_bytes,
                                                  std::uint32_t mss) const {
  const auto window_pkts = static_cast<std::size_t>(
      std::max(8.0, cwnd_bytes / static_cast<double>(mss)));
  return rates(window_pkts);
}

}  // namespace nimbus::sim
