#include "sim/rate_sampler.h"

#include <algorithm>

namespace nimbus::sim {

void RateSampler::grow() {
  std::size_t cap = ring_.empty() ? 64 : ring_.size() * 2;
  std::vector<Sample> next(cap);
  const std::uint64_t nmask = cap - 1;
  // Live samples occupy global indices [next_ - size, next_).
  const std::uint64_t size = next_ < ring_.size() ? next_ : ring_.size();
  for (std::uint64_t i = next_ - size; i < next_; ++i) {
    next[i & nmask] = ring_[i & mask_];
  }
  ring_ = std::move(next);
  mask_ = nmask;
}

// NIMBUS_HOT_PATH begin
void RateSampler::on_ack(TimeNs sent_at, TimeNs acked_at,
                         std::uint32_t bytes) {
  // detlint:allow(R5): doubling growth, capped at max_history_ slots
  if (next_ >= ring_.size() && ring_.size() < max_history_) grow();
  cum_bytes_ += bytes;
  ring_[next_ & mask_] = {sent_at, acked_at, cum_bytes_};
  ++next_;
}

RateSampler::Rates RateSampler::rates(std::size_t n_packets) const {
  Rates out;
  n_packets = std::min(n_packets, history_size());
  if (n_packets < std::max<std::size_t>(2, min_packets_)) return out;

  // Eq. (2): n_bytes spans the n-1 inter-packet gaps between the first and
  // last sample of the window, so it sums the bytes of packets after the
  // first — exactly the difference of the two running totals.
  const Sample& a = ring_[(next_ - n_packets) & mask_];
  const Sample& b = ring_[(next_ - 1) & mask_];
  const auto n_bytes = static_cast<std::int64_t>(b.cum_bytes - a.cum_bytes);
  const TimeNs send_span = b.sent_at - a.sent_at;
  const TimeNs recv_span = b.acked_at - a.acked_at;
  if (send_span <= 0 || recv_span <= 0 || n_bytes <= 0) return out;

  out.send_bps = static_cast<double>(n_bytes) * 8.0 / to_sec(send_span);
  out.recv_bps = static_cast<double>(n_bytes) * 8.0 / to_sec(recv_span);
  out.valid = true;
  return out;
}

RateSampler::Rates RateSampler::rates_over_window(double cwnd_bytes,
                                                  std::uint32_t mss) const {
  const auto window_pkts = static_cast<std::size_t>(
      std::max(8.0, cwnd_bytes / static_cast<double>(mss)));
  return rates(window_pkts);
}
// NIMBUS_HOT_PATH end

// --- reference (deque) implementation: the PR 2 code, verbatim -----------

void ReferenceRateSampler::on_ack(TimeNs sent_at, TimeNs acked_at,
                                  std::uint32_t bytes) {
  samples_.push_back({sent_at, acked_at, bytes});
  if (samples_.size() > max_history_) samples_.pop_front();
}

RateSampler::Rates ReferenceRateSampler::rates(std::size_t n_packets) const {
  RateSampler::Rates out;
  n_packets = std::min(n_packets, samples_.size());
  if (n_packets < std::max<std::size_t>(2, min_packets_)) return out;

  const std::size_t first = samples_.size() - n_packets;
  const Sample& a = samples_[first];
  const Sample& b = samples_.back();

  std::int64_t n_bytes = 0;
  for (std::size_t i = first + 1; i < samples_.size(); ++i) {
    n_bytes += samples_[i].bytes;
  }
  const TimeNs send_span = b.sent_at - a.sent_at;
  const TimeNs recv_span = b.acked_at - a.acked_at;
  if (send_span <= 0 || recv_span <= 0 || n_bytes <= 0) return out;

  out.send_bps = static_cast<double>(n_bytes) * 8.0 / to_sec(send_span);
  out.recv_bps = static_cast<double>(n_bytes) * 8.0 / to_sec(recv_span);
  out.valid = true;
  return out;
}

RateSampler::Rates ReferenceRateSampler::rates_over_window(
    double cwnd_bytes, std::uint32_t mss) const {
  const auto window_pkts = static_cast<std::size_t>(
      std::max(8.0, cwnd_bytes / static_cast<double>(mss)));
  return rates(window_pkts);
}

}  // namespace nimbus::sim
