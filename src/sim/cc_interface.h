// The contract between the transport and a congestion-control algorithm.
//
// Algorithms receive per-ACK and per-loss callbacks (the ACK clock) plus a
// periodic 10 ms report mirroring the paper's CCP deployment (section 4.2).
// They steer the transport through CcContext: a congestion window, an
// optional pacing rate (0 = pure ACK clocking), or both.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"
#include "util/time.h"

namespace nimbus::sim {

/// Per-ACK information handed to the algorithm.
struct AckInfo {
  TimeNs now = 0;
  std::uint64_t seq = 0;          // packet being acknowledged
  std::uint32_t newly_acked_bytes = 0;
  TimeNs rtt = 0;                 // RTT sample from this ACK
  bool app_limited = false;       // sender had no data when this pkt was sent
};

/// Loss notification (from triple-duplicate detection).
struct LossInfo {
  TimeNs now = 0;
  std::uint64_t seq = 0;
  std::uint32_t lost_bytes = 0;
  /// True for the first loss in a round trip; algorithms should apply a
  /// multiplicative decrease at most once per congestion event.
  bool new_congestion_event = false;
};

/// CCP-style periodic report aggregated over the report interval.
struct CcReport {
  TimeNs now = 0;
  double send_rate_bps = 0.0;   // S over the last window of packets
  double recv_rate_bps = 0.0;   // R over the same packets
  bool rates_valid = false;
  TimeNs srtt = 0;
  TimeNs latest_rtt = 0;
  TimeNs min_rtt = 0;
  std::uint32_t acked_packets = 0;   // since the previous report
  std::uint32_t lost_packets = 0;    // since the previous report
  std::int64_t bytes_in_flight = 0;
};

/// Control surface the transport exposes to algorithms.
class CcContext {
 public:
  virtual ~CcContext() = default;

  virtual TimeNs now() const = 0;
  virtual std::uint32_t mss() const = 0;

  virtual double cwnd_bytes() const = 0;
  virtual void set_cwnd_bytes(double bytes) = 0;

  /// Pacing rate in bits/s; 0 disables pacing (sends are ACK-clocked).
  virtual double pacing_rate_bps() const = 0;
  virtual void set_pacing_rate_bps(double bps) = 0;

  virtual TimeNs srtt() const = 0;
  virtual TimeNs latest_rtt() const = 0;
  virtual TimeNs min_rtt() const = 0;

  virtual std::int64_t bytes_in_flight() const = 0;
  virtual bool is_app_limited() const = 0;

  /// Send/receive rates over the last window of acked packets (Eq. 2).
  virtual double send_rate_bps() const = 0;
  virtual double recv_rate_bps() const = 0;
  virtual bool rates_valid() const = 0;

  /// Overrides the S/R measurement window (bytes of recently acked data).
  /// 0 restores the default (the current cwnd).  Nimbus sets one RTT's
  /// worth: the paper requires the measurement interval to stay below the
  /// pulse period or the pulse would average out of z (section 3.4).
  virtual void set_rate_window_bytes(double bytes) = 0;

  /// Deterministic per-flow randomness (e.g. Nimbus pulser election).
  virtual util::Rng& rng() = 0;
};

/// Congestion-control algorithm interface.
class CcAlgorithm {
 public:
  virtual ~CcAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Called once when the flow starts; set the initial window/rate here.
  virtual void init(CcContext& ctx) = 0;

  virtual void on_ack(CcContext& ctx, const AckInfo& ack) = 0;
  virtual void on_loss(CcContext& /*ctx*/, const LossInfo& /*loss*/) {}
  /// Retransmission timeout: the whole window was lost.
  virtual void on_rto(CcContext& /*ctx*/) {}
  /// Periodic CCP-style report (every TransportConfig::report_interval).
  virtual void on_report(CcContext& /*ctx*/, const CcReport& /*report*/) {}
};

}  // namespace nimbus::sim
