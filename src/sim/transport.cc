#include "sim/transport.h"

#include <algorithm>

#include "util/check.h"

namespace nimbus::sim {

namespace {
constexpr std::uint64_t kDupThreshold = 3;
constexpr TimeNs kMaxRto = from_sec(60);
constexpr std::int64_t kBackloggedBytes =
    std::numeric_limits<std::int64_t>::max() / 2;
}  // namespace

TransportObs TransportObs::registered(obs::MetricsRegistry* m,
                                      obs::Trace trace) {
  TransportObs o;
  o.trace = trace;
  if (m != nullptr) {
    o.acks = m->counter("transport.acks");
    o.retransmits = m->counter("transport.retransmits");
    o.rto_backoffs = m->counter("transport.rto_backoffs");
    o.spurious_rx = m->counter("transport.spurious_rx");
  }
  return o;
}

TransportFlow::TransportFlow(EventLoop* loop, BottleneckLink* link,
                             Config config, std::unique_ptr<CcAlgorithm> cc)
    : loop_(loop),
      link_(link),
      cfg_(config),
      cc_(std::move(cc)),
      rng_(config.seed),
      rto_timer_(loop),
      pacing_timer_(loop),
      report_timer_(loop),
      stop_timer_(loop) {
  static_assert(sizeof(AckArrival) <= EventCallback::kInlineBytes,
                "ACK delivery must fit the inline callback buffer");
  NIMBUS_CHECK(cc_ != nullptr);
  NIMBUS_CHECK(cfg_.mss > 0);
  backlogged_ = cfg_.app_bytes < 0;
  app_bytes_remaining_ = backlogged_ ? kBackloggedBytes : cfg_.app_bytes;
  cwnd_bytes_ = cfg_.initial_cwnd_pkts * cfg_.mss;
}

TransportFlow::~TransportFlow() = default;

void TransportFlow::start() {
  loop_->schedule(std::max(cfg_.start_time, loop_->now()),
                  [this]() { begin(); });
}

void TransportFlow::begin() {
  started_ = true;
  cc_->init(*this);
  if (cfg_.stop_time != std::numeric_limits<TimeNs>::max()) {
    stop_timer_.arm(cfg_.stop_time, [this]() { app_bytes_remaining_ = 0; });
  }
  report_timer_.arm_in(cfg_.report_interval, [this]() { report_tick(); });
  maybe_send();
}

TimeNs TransportFlow::now() const { return loop_->now(); }

void TransportFlow::set_cwnd_bytes(double bytes) {
  const double old = cwnd_bytes_;
  cwnd_bytes_ = std::max<double>(bytes, cfg_.mss);
  // A halving-or-worse in one set is a collapse worth a timeline mark.
  if (obs_.trace.active() && started_ && cwnd_bytes_ <= old * 0.5) {
    obs::TraceEvent e;
    e.t = loop_->now();
    e.kind = static_cast<std::uint16_t>(obs::TraceKind::kCwndCollapse);
    e.flow = static_cast<std::uint16_t>(cfg_.id);
    e.v0 = cwnd_bytes_;
    e.v1 = old;
    obs_.trace.emit(e);
  }
}

void TransportFlow::set_pacing_rate_bps(double bps) {
  NIMBUS_CHECK(bps >= 0);
  pacing_rate_bps_ = bps;
}

std::int64_t TransportFlow::bytes_in_flight() const {
  return static_cast<std::int64_t>(outstanding_.size()) * cfg_.mss;
}

bool TransportFlow::is_app_limited() const {
  return !backlogged_ && app_bytes_remaining_ <= 0 && !completed_;
}

std::uint64_t TransportFlow::total_packets() const {
  NIMBUS_CHECK(!backlogged_);
  return (static_cast<std::uint64_t>(cfg_.app_bytes) + cfg_.mss - 1) /
         cfg_.mss;
}

void TransportFlow::add_app_bytes(std::int64_t bytes) {
  NIMBUS_CHECK(bytes >= 0);
  if (backlogged_ || completed_) return;
  app_bytes_remaining_ += bytes;
  if (started_) maybe_send();
}

bool TransportFlow::can_send() const {
  if (!started_ || completed_) return false;
  const bool has_data = !retx_queue_.empty() || app_bytes_remaining_ > 0;
  if (!has_data) return false;
  return static_cast<double>(bytes_in_flight() + cfg_.mss) <=
         cwnd_bytes_ + 0.5;
}

void TransportFlow::maybe_send() {
  while (can_send()) {
    if (pacing_rate_bps_ > 0) {
      const TimeNs t = loop_->now();
      if (t < next_send_time_) {
        pacing_timer_.arm(next_send_time_, [this]() { maybe_send(); });
        return;
      }
      send_one();
      next_send_time_ = std::max(next_send_time_, t) +
                        tx_time(cfg_.mss, pacing_rate_bps_);
    } else {
      send_one();
    }
  }
}

void TransportFlow::send_one() {
  std::uint64_t seq;
  bool retransmit = false;
  if (!retx_queue_.empty()) {
    seq = retx_queue_.front();
    retx_queue_.pop_front();
    retransmit = true;
  } else {
    seq = snd_nxt_++;
    if (!backlogged_) {
      app_bytes_remaining_ =
          std::max<std::int64_t>(0, app_bytes_remaining_ - cfg_.mss);
    }
  }

  Packet p;
  p.flow_id = cfg_.id;
  p.seq = seq;
  p.size_bytes = cfg_.mss;
  p.sent_at = loop_->now();
  p.is_transport = true;
  p.is_retransmit = retransmit;

  outstanding_.insert(seq, {p.sent_at, retransmit});
  ++sent_packets_total_;
  if (retransmit) obs_.retransmits.inc();
  if (!rto_timer_.armed()) arm_or_cancel_rto();
  link_->enqueue(p);
}

void TransportFlow::on_link_delivery(const Packet& p, TimeNs /*dequeue_done*/) {
  // Receiver-side processing.  Conceptually this happens one-way-delay
  // later; since receiver state only influences ACK contents and every ACK
  // takes the same reverse path, evaluating it now preserves all orderings.
  if (p.seq == rcv_next_) {
    ++rcv_next_;
    while (out_of_order_.count() > 0 && out_of_order_.test(rcv_next_)) {
      out_of_order_.clear(rcv_next_);
      ++rcv_next_;
    }
  } else if (p.seq > rcv_next_) {
    out_of_order_.ensure_span(rcv_next_, p.seq);
    if (out_of_order_.test(p.seq)) obs_.spurious_rx.inc();
    out_of_order_.set(p.seq);
  } else {
    // p.seq < rcv_next_: duplicate (spurious retransmission), ignore.
    obs_.spurious_rx.inc();
  }

  Ack ack;
  ack.flow_id = cfg_.id;
  ack.seq = p.seq;
  ack.cum_valid = rcv_next_ > 0;
  ack.cum_ack = ack.cum_valid ? rcv_next_ - 1 : 0;
  ack.data_sent_at = p.sent_at;
  ack.bytes = p.size_bytes;

  if (ack_impairment_ != nullptr) {
    const ImpairmentStage::Decision d =
        ack_impairment_->on_packet(loop_->now());
    for (int i = 0; i < d.copies; ++i) {
      loop_->schedule_in(cfg_.rtt_prop + d.delay[i], AckArrival{this, ack});
    }
    return;
  }
  loop_->schedule_in(cfg_.rtt_prop, AckArrival{this, ack});
}

void TransportFlow::handle_ack(const Ack& ack) {
  if (completed_) return;
  obs_.acks.inc();
  const TimeNs t = loop_->now();
  latest_rtt_ = t - ack.data_sent_at;
  update_rtt(latest_rtt_);
  rto_backoff_ = 0;

  std::uint32_t newly_acked = 0;
  if (outstanding_.erase(ack.seq)) newly_acked += cfg_.mss;
  if (ack.cum_valid) {
    while (!outstanding_.empty() && outstanding_.lowest() <= ack.cum_ack) {
      newly_acked += cfg_.mss;
      outstanding_.erase(outstanding_.lowest());
    }
    // Purge queued retransmissions the cumulative ACK has overtaken (can
    // only happen via spurious RTO; cheap safety either way).
    while (!retx_queue_.empty() && retx_queue_.front() <= ack.cum_ack) {
      retx_queue_.pop_front();
    }
    snd_una_ = std::max(snd_una_, ack.cum_ack + 1);
  }
  if (!any_acked_ || ack.seq > highest_acked_) {
    highest_acked_ = ack.seq;
    any_acked_ = true;
  }

  acked_bytes_total_ += newly_acked;
  ++acked_since_report_;
  sampler_.on_ack(ack.data_sent_at, t, ack.bytes);
  cached_rates_ = sampler_.rates_over_window(
      rate_window_bytes_ > 0 ? rate_window_bytes_ : cwnd_bytes_, cfg_.mss);
  if (on_rtt_sample_) on_rtt_sample_(cfg_.id, t, latest_rtt_);

  detect_losses();

  AckInfo info;
  info.now = t;
  info.seq = ack.seq;
  info.newly_acked_bytes = newly_acked;
  info.rtt = latest_rtt_;
  info.app_limited = is_app_limited();
  cc_->on_ack(*this, info);

  arm_or_cancel_rto();
  check_completion();
  if (!completed_) maybe_send();
}

void TransportFlow::detect_losses() {
  if (!any_acked_ || highest_acked_ < kDupThreshold) return;
  if (outstanding_.empty() || outstanding_.lowest() >= highest_acked_) return;
  const std::uint64_t lost_below = highest_acked_ - kDupThreshold + 1;
  const TimeNs t = loop_->now();
  // RACK-style time guard: never declare a packet lost within ~1 RTT of its
  // (re)transmission, so SACKs of pre-retransmission packets cannot kill a
  // fresh retransmission.
  const TimeNs min_age = latest_rtt_ - latest_rtt_ / 8;

  // Ascending ring scan over the hole region [lowest, lost_below); empty
  // in the no-loss steady state (the cumulative ACK keeps lowest() at the
  // frontier), and bounded by the window during recovery.  declare_lost
  // only erases the sequence it is called with, which for_each_in permits.
  outstanding_.for_each_in(
      outstanding_.lowest(), lost_below,
      [&](std::uint64_t seq, const SentRecord& rec) {
        if (t - rec.sent_at >= min_age) declare_lost(seq);
      });
}

void TransportFlow::declare_lost(std::uint64_t seq) {
  outstanding_.erase(seq);
  retx_queue_.push_back(seq);
  ++lost_packets_total_;
  ++lost_since_report_;

  LossInfo loss;
  loss.now = loop_->now();
  loss.seq = seq;
  loss.lost_bytes = cfg_.mss;
  loss.new_congestion_event = seq >= loss_event_end_;
  if (loss.new_congestion_event) loss_event_end_ = snd_nxt_;
  if (loss.new_congestion_event && obs_.trace.active()) {
    obs::TraceEvent e;
    e.t = loss.now;
    e.kind = static_cast<std::uint16_t>(obs::TraceKind::kLossEpisode);
    e.flow = static_cast<std::uint16_t>(cfg_.id);
    e.a = static_cast<std::uint32_t>(seq);
    e.v0 = cwnd_bytes_;
    obs_.trace.emit(e);
  }
  cc_->on_loss(*this, loss);
}

void TransportFlow::update_rtt(TimeNs sample) {
  min_rtt_ = std::min(min_rtt_, sample);
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_ = true;
    return;
  }
  const TimeNs err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + sample) / 8;
}

TimeNs TransportFlow::current_rto() const {
  TimeNs rto = have_rtt_ ? srtt_ + 4 * rttvar_ : from_sec(1);
  rto = std::max(rto, cfg_.min_rto);
  rto <<= std::min(rto_backoff_, 6);
  return std::min(rto, kMaxRto);
}

void TransportFlow::arm_or_cancel_rto() {
  if (outstanding_.empty()) {
    rto_timer_.cancel();
    return;
  }
  rto_timer_.arm_in(current_rto(), [this]() { on_rto_fired(); });
}

void TransportFlow::on_rto_fired() {
  if (completed_ || outstanding_.empty()) return;
  ++rto_count_;
  rto_backoff_ = std::min(rto_backoff_ + 1, 6);
  obs_.rto_backoffs.inc();
  if (obs_.trace.active()) {
    obs::TraceEvent e;
    e.t = loop_->now();
    e.kind = static_cast<std::uint16_t>(obs::TraceKind::kRtoFired);
    e.flow = static_cast<std::uint16_t>(cfg_.id);
    e.a = static_cast<std::uint32_t>(rto_backoff_);
    obs_.trace.emit(e);
  }

  // The whole outstanding window is presumed lost; go-back-N style recovery
  // with the congestion controller reset to one packet by on_rto().
  retx_scratch_.clear();
  for (std::size_t i = 0; i < retx_queue_.size(); ++i) {
    retx_scratch_.push_back(retx_queue_[i]);
  }
  const std::size_t already_queued = retx_scratch_.size();
  outstanding_.for_each_in(outstanding_.lowest(), outstanding_.upper(),
                           [&](std::uint64_t seq, const SentRecord&) {
                             retx_scratch_.push_back(seq);
                           });
  outstanding_.clear();
  lost_packets_total_ += retx_scratch_.size() - already_queued;
  lost_since_report_ += retx_scratch_.size() - already_queued;
  std::sort(retx_scratch_.begin(), retx_scratch_.end());
  retx_scratch_.erase(
      std::unique(retx_scratch_.begin(), retx_scratch_.end()),
      retx_scratch_.end());
  retx_queue_.clear();
  for (std::uint64_t s : retx_scratch_) retx_queue_.push_back(s);
  loss_event_end_ = snd_nxt_;

  cc_->on_rto(*this);
  arm_or_cancel_rto();
  maybe_send();
}

void TransportFlow::report_tick() {
  if (completed_) return;
  CcReport r;
  r.now = loop_->now();
  r.send_rate_bps = cached_rates_.send_bps;
  r.recv_rate_bps = cached_rates_.recv_bps;
  r.rates_valid = cached_rates_.valid;
  r.srtt = srtt_;
  r.latest_rtt = latest_rtt_;
  r.min_rtt = have_rtt_ ? min_rtt_ : 0;
  r.acked_packets = acked_since_report_;
  r.lost_packets = lost_since_report_;
  r.bytes_in_flight = bytes_in_flight();
  acked_since_report_ = 0;
  lost_since_report_ = 0;

  cc_->on_report(*this, r);
  maybe_send();  // the report may have changed cwnd / pacing
  report_timer_.arm_in(cfg_.report_interval, [this]() { report_tick(); });
}

void TransportFlow::check_completion() {
  if (backlogged_ || completed_) return;
  if (app_bytes_remaining_ > 0) return;
  // For fixed-size flows, everything offered must be acknowledged.
  if (cfg_.app_bytes >= 0 && snd_nxt_ < total_packets()) return;
  if (!outstanding_.empty() || !retx_queue_.empty()) return;
  if (cfg_.app_bytes == 0) return;  // app-driven flow with no data yet
  completed_ = true;
  rto_timer_.cancel();
  pacing_timer_.cancel();
  report_timer_.cancel();
  stop_timer_.cancel();
  if (on_complete_) {
    on_complete_(cfg_.id, loop_->now(), loop_->now() - cfg_.start_time);
  }
}

}  // namespace nimbus::sim
