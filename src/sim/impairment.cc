#include "sim/impairment.h"

#include <algorithm>

#include "util/check.h"

namespace nimbus::sim {

namespace {

// Local splitmix64 step for deriving per-mechanism RNG streams from the
// stage seed.  Mirrors the finalizer used by exp::derive_seed, but sim/
// must not depend on exp/, so the mixer lives here.
std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + salt * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool prob_ok(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

bool ImpairmentConfig::any() const {
  return ge_enabled || jitter > 0 || duplicate_prob > 0.0 ||
         !blackouts.empty() || flap_period > 0;
}

ImpairmentStage::ImpairmentStage(const ImpairmentConfig& cfg)
    : cfg_(cfg),
      loss_rng_(mix_stream(cfg.seed, 1)),
      jitter_rng_(mix_stream(cfg.seed, 2)),
      dup_rng_(mix_stream(cfg.seed, 3)) {
  NIMBUS_CHECK_MSG(cfg_.seed != 0,
                   "impairment stage needs an explicit nonzero seed");
  NIMBUS_CHECK(prob_ok(cfg_.ge_p) && prob_ok(cfg_.ge_loss_good) &&
               prob_ok(cfg_.ge_loss_bad) && prob_ok(cfg_.duplicate_prob));
  // An enabled chain must be able to leave the bad state; a permanent
  // outage is a blackout, not a loss process.
  NIMBUS_CHECK(!cfg_.ge_enabled || (cfg_.ge_q > 0.0 && cfg_.ge_q <= 1.0));
  NIMBUS_CHECK(cfg_.jitter >= 0);
  NIMBUS_CHECK(cfg_.flap_period == 0 ||
               (cfg_.flap_duration > 0 && cfg_.flap_duration <= cfg_.flap_period));
  for (const Outage& o : cfg_.blackouts) {
    NIMBUS_CHECK(o.start >= 0 && o.duration > 0);
  }
  std::sort(cfg_.blackouts.begin(), cfg_.blackouts.end(),
            [](const Outage& a, const Outage& b) { return a.start < b.start; });
}

bool ImpairmentStage::in_blackout(TimeNs now) {
  while (outage_next_ < cfg_.blackouts.size() &&
         cfg_.blackouts[outage_next_].start + cfg_.blackouts[outage_next_].duration <= now) {
    ++outage_next_;
  }
  if (outage_next_ < cfg_.blackouts.size() &&
      now >= cfg_.blackouts[outage_next_].start) {
    return true;
  }
  if (cfg_.flap_period > 0 && now >= cfg_.flap_offset &&
      (now - cfg_.flap_offset) % cfg_.flap_period < cfg_.flap_duration) {
    return true;
  }
  return false;
}

ImpairmentStage::Decision ImpairmentStage::on_packet(TimeNs now) {
  ++offered_;
  Decision d;
  const bool dark = in_blackout(now);
  if (obs_trace_.active() && dark != was_blackout_) {
    obs::TraceEvent e;
    e.t = now;
    e.kind = static_cast<std::uint16_t>(dark ? obs::TraceKind::kBlackoutBegin
                                             : obs::TraceKind::kBlackoutEnd);
    e.a = obs_tag_;
    obs_trace_.emit(e);
  }
  was_blackout_ = dark;
  if (dark) {
    ++blackout_dropped_;
    d.copies = 0;
    return d;
  }
  if (cfg_.ge_enabled) {
    const double p_loss = ge_bad_ ? cfg_.ge_loss_bad : cfg_.ge_loss_good;
    const bool dropped = loss_rng_.bernoulli(p_loss);
    // Advance the chain once per offered packet, after the loss draw, so
    // the state sequence is a function of the loss stream alone.
    ge_bad_ = ge_bad_ ? !loss_rng_.bernoulli(cfg_.ge_q)
                      : loss_rng_.bernoulli(cfg_.ge_p);
    if (dropped) {
      ++lost_;
      d.copies = 0;
      return d;
    }
  }
  d.copies = 1;
  if (cfg_.duplicate_prob > 0.0 && dup_rng_.bernoulli(cfg_.duplicate_prob)) {
    d.copies = 2;
    ++duplicated_;
  }
  for (int i = 0; i < d.copies; ++i) {
    TimeNs release = now;
    if (cfg_.jitter > 0) {
      release += jitter_rng_.uniform_int(0, cfg_.jitter);
    }
    if (!cfg_.reorder) {
      // FIFO: a draw that would overtake the previous release is clamped.
      release = std::max(release, last_release_);
    } else if (release < last_release_) {
      ++reordered_;
    }
    last_release_ = std::max(last_release_, release);
    d.delay[i] = release - now;
  }
  return d;
}

}  // namespace nimbus::sim
