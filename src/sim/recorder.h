// Experiment measurement: per-flow delivered bytes, RTT samples, per-packet
// queueing delay for tracked flows, sampled queue state, drops, and flow
// completion times.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sim/packet.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/timeseries.h"

namespace nimbus::sim {

class EventLoop;
class BottleneckLink;

class Recorder {
 public:
  /// Starts the periodic queue probe (default every 10 ms).
  void attach(EventLoop* loop, BottleneckLink* link,
              TimeNs probe_interval = from_ms(10));

  /// Pre-sizes the probe series for a run of the given length (called by
  /// Network::run_until with the scenario duration so steady-state probing
  /// never reallocates).
  void expect_duration(TimeNs duration);

  /// Tracked flows get per-packet queueing-delay series (others only get
  /// byte counters, which are cheap).
  void track_flow(FlowId id) { tracked_.insert(id); }

  // --- hooks called by Network ---
  void on_delivery(const Packet& p, TimeNs dequeue_done);
  void on_drop(const Packet& p);
  void on_rtt_sample(FlowId id, TimeNs now, TimeNs rtt);
  void on_completion(FlowId id, TimeNs when, TimeNs fct,
                     std::int64_t flow_bytes);

  // --- accessors ---
  /// Bytes delivered through the bottleneck, per flow.
  const util::ByteCounter& delivered(FlowId id) const;
  /// Aggregate delivered bytes for a set of flows over [t0, t1).
  double aggregate_rate_bps(const std::vector<FlowId>& ids, TimeNs t0,
                            TimeNs t1) const;
  /// Per-packet queueing delay (tracked flows only).
  const util::TimeSeries& queue_delay(FlowId id) const;
  /// RTT samples per flow (only for flows wired via rtt handler).
  const util::TimeSeries& rtt_samples(FlowId id) const;
  /// Queue delay sampled by the periodic probe (all traffic).
  const util::TimeSeries& probed_queue_delay() const { return probe_qdelay_; }
  std::uint64_t drops(FlowId id) const;
  std::uint64_t total_drops() const { return total_drops_; }

  struct Completion {
    FlowId id;
    TimeNs when;
    TimeNs fct;
    std::int64_t bytes;
  };
  const std::vector<Completion>& completions() const { return completions_; }

  bool has_flow(FlowId id) const { return delivered_.count(id) > 0; }

 private:
  void probe_tick();

  EventLoop* loop_ = nullptr;
  BottleneckLink* link_ = nullptr;
  TimeNs probe_interval_ = 0;

  std::set<FlowId> tracked_;
  std::map<FlowId, util::ByteCounter> delivered_;
  std::map<FlowId, util::TimeSeries> queue_delay_;
  std::map<FlowId, util::TimeSeries> rtt_;
  std::map<FlowId, std::uint64_t> drops_;
  std::uint64_t total_drops_ = 0;
  util::TimeSeries probe_qdelay_;
  std::vector<Completion> completions_;
};

}  // namespace nimbus::sim
