// Experiment measurement: per-flow delivered bytes, RTT samples, per-packet
// queueing delay for tracked flows, sampled queue state, drops, and flow
// completion times.
//
// Flow ids are small and dense (the Network allocates them sequentially),
// so all per-flow state is held in flat vectors indexed by FlowId instead
// of the PR 2-era std::map/std::set — the per-delivery and per-ACK hooks
// are branch + array-index instead of a tree walk.  RTT series live behind
// stable unique_ptr cells so Network can hand each TransportFlow's ACK
// handler a direct TimeSeries pointer (rtt_series()) that survives later
// flow registrations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/packet.h"
#include "util/stats.h"
#include "util/time.h"
#include "util/timeseries.h"

namespace nimbus::sim {

class EventLoop;
class BottleneckLink;

class Recorder {
 public:
  /// Starts the periodic queue probe (default every 10 ms).
  void attach(EventLoop* loop, BottleneckLink* link,
              TimeNs probe_interval = from_ms(10));

  /// Pre-sizes the probe series for a run of the given length (called by
  /// Network::run_until with the scenario duration so steady-state probing
  /// never reallocates).
  void expect_duration(TimeNs duration);

  /// Tracked flows get per-packet queueing-delay series (others only get
  /// byte counters, which are cheap).
  void track_flow(FlowId id) {
    if (id >= tracked_.size()) tracked_.resize(id + 1, 0);
    tracked_[id] = 1;
  }

  // --- hooks called by Network ---
  void on_delivery(const Packet& p, TimeNs dequeue_done);
  void on_drop(const Packet& p);
  void on_rtt_sample(FlowId id, TimeNs now, TimeNs rtt);
  void on_completion(FlowId id, TimeNs when, TimeNs fct,
                     std::int64_t flow_bytes);

  /// Stable per-flow RTT series cell (created on first use): Network wires
  /// each flow's ACK handler to this pointer, so the per-ACK hot path adds
  /// a sample with zero lookups.
  util::TimeSeries* rtt_series(FlowId id);

  // --- accessors ---
  /// Bytes delivered through the bottleneck, per flow.
  const util::ByteCounter& delivered(FlowId id) const;
  /// Aggregate delivered bytes for a set of flows over [t0, t1).
  double aggregate_rate_bps(const std::vector<FlowId>& ids, TimeNs t0,
                            TimeNs t1) const;
  /// Per-packet queueing delay (tracked flows only).
  const util::TimeSeries& queue_delay(FlowId id) const;
  /// RTT samples per flow (only for flows wired via rtt handler).
  const util::TimeSeries& rtt_samples(FlowId id) const;
  /// Queue delay sampled by the periodic probe (all traffic).
  const util::TimeSeries& probed_queue_delay() const { return probe_qdelay_; }
  std::uint64_t drops(FlowId id) const;
  std::uint64_t total_drops() const { return total_drops_; }

  struct Completion {
    FlowId id;
    TimeNs when;
    TimeNs fct;
    std::int64_t bytes;
  };
  const std::vector<Completion>& completions() const { return completions_; }

  bool has_flow(FlowId id) const {
    return id < delivered_.size() && seen_[id] != 0;
  }

 private:
  void probe_tick();
  void ensure_flow(FlowId id);
  bool is_tracked(FlowId id) const {
    return id < tracked_.size() && tracked_[id] != 0;
  }

  EventLoop* loop_ = nullptr;
  BottleneckLink* link_ = nullptr;
  TimeNs probe_interval_ = 0;

  std::vector<char> tracked_;                 // indexed by FlowId
  std::vector<char> seen_;                    // had a delivery
  std::vector<util::ByteCounter> delivered_;  // sized together with seen_
  std::vector<std::uint64_t> drops_;
  std::vector<std::unique_ptr<util::TimeSeries>> queue_delay_;
  std::vector<std::unique_ptr<util::TimeSeries>> rtt_;
  std::uint64_t total_drops_ = 0;
  util::TimeSeries probe_qdelay_;
  std::vector<Completion> completions_;
};

}  // namespace nimbus::sim
