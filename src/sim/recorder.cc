#include "sim/recorder.h"

#include "sim/event_loop.h"
#include "sim/link.h"
#include "util/check.h"

namespace nimbus::sim {

namespace {
const util::ByteCounter kEmptyCounter;
const util::TimeSeries kEmptySeries;
}  // namespace

void Recorder::attach(EventLoop* loop, BottleneckLink* link,
                      TimeNs probe_interval) {
  NIMBUS_CHECK(loop != nullptr && link != nullptr);
  loop_ = loop;
  link_ = link;
  probe_interval_ = probe_interval;
  // Self-rescheduling probe: an 8-byte capture the event loop stores
  // inline (the seed version copied a shared std::function every tick).
  loop_->schedule_in(probe_interval_, [this]() { probe_tick(); });
}

void Recorder::probe_tick() {
  probe_qdelay_.add(loop_->now(), to_ms(link_->current_queue_delay()));
  loop_->schedule_in(probe_interval_, [this]() { probe_tick(); });
}

void Recorder::expect_duration(TimeNs duration) {
  if (probe_interval_ <= 0) return;
  probe_qdelay_.reserve(
      static_cast<std::size_t>(duration / probe_interval_) + 1);
}

void Recorder::ensure_flow(FlowId id) {
  if (id >= delivered_.size()) {
    // Delivered-bytes counters sample at 1 ms buckets: every bench reduces
    // throughput on second/millisecond-aligned grids, where bucketed
    // queries are bit-identical to per-packet ones, and the per-delivery
    // hot path stops appending one pair per packet (ROADMAP hot spot).
    delivered_.resize(id + 1, util::ByteCounter(from_ms(1)));
    seen_.resize(id + 1, 0);
    drops_.resize(id + 1, 0);
  }
}

void Recorder::on_delivery(const Packet& p, TimeNs dequeue_done) {
  if (p.flow_id >= delivered_.size()) ensure_flow(p.flow_id);
  delivered_[p.flow_id].add(dequeue_done, p.size_bytes);
  seen_[p.flow_id] = 1;
  if (is_tracked(p.flow_id)) {
    if (p.flow_id >= queue_delay_.size()) queue_delay_.resize(p.flow_id + 1);
    auto& series = queue_delay_[p.flow_id];
    if (!series) series = std::make_unique<util::TimeSeries>();
    series->add(dequeue_done, to_ms(dequeue_done - p.enqueued_at));
  }
}

void Recorder::on_drop(const Packet& p) {
  if (p.flow_id >= delivered_.size()) ensure_flow(p.flow_id);
  ++drops_[p.flow_id];
  ++total_drops_;
}

util::TimeSeries* Recorder::rtt_series(FlowId id) {
  if (id >= rtt_.size()) rtt_.resize(id + 1);
  if (!rtt_[id]) rtt_[id] = std::make_unique<util::TimeSeries>();
  return rtt_[id].get();
}

void Recorder::on_rtt_sample(FlowId id, TimeNs now, TimeNs rtt) {
  rtt_series(id)->add(now, to_ms(rtt));
}

void Recorder::on_completion(FlowId id, TimeNs when, TimeNs fct,
                             std::int64_t flow_bytes) {
  completions_.push_back({id, when, fct, flow_bytes});
}

const util::ByteCounter& Recorder::delivered(FlowId id) const {
  return id < delivered_.size() ? delivered_[id] : kEmptyCounter;
}

double Recorder::aggregate_rate_bps(const std::vector<FlowId>& ids, TimeNs t0,
                                    TimeNs t1) const {
  if (t1 <= t0) return 0.0;
  std::int64_t bytes = 0;
  for (FlowId id : ids) bytes += delivered(id).bytes_in(t0, t1);
  return static_cast<double>(bytes) * 8.0 / to_sec(t1 - t0);
}

const util::TimeSeries& Recorder::queue_delay(FlowId id) const {
  return id < queue_delay_.size() && queue_delay_[id] ? *queue_delay_[id]
                                                      : kEmptySeries;
}

const util::TimeSeries& Recorder::rtt_samples(FlowId id) const {
  return id < rtt_.size() && rtt_[id] ? *rtt_[id] : kEmptySeries;
}

std::uint64_t Recorder::drops(FlowId id) const {
  return id < drops_.size() ? drops_[id] : 0;
}

}  // namespace nimbus::sim
