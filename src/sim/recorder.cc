#include "sim/recorder.h"

#include "sim/event_loop.h"
#include "sim/link.h"
#include "util/check.h"

namespace nimbus::sim {

namespace {
const util::ByteCounter kEmptyCounter;
const util::TimeSeries kEmptySeries;
}  // namespace

void Recorder::attach(EventLoop* loop, BottleneckLink* link,
                      TimeNs probe_interval) {
  NIMBUS_CHECK(loop != nullptr && link != nullptr);
  loop_ = loop;
  link_ = link;
  probe_interval_ = probe_interval;
  // Self-rescheduling probe: an 8-byte capture the event loop stores
  // inline (the seed version copied a shared std::function every tick).
  loop_->schedule_in(probe_interval_, [this]() { probe_tick(); });
}

void Recorder::probe_tick() {
  probe_qdelay_.add(loop_->now(), to_ms(link_->current_queue_delay()));
  loop_->schedule_in(probe_interval_, [this]() { probe_tick(); });
}

void Recorder::expect_duration(TimeNs duration) {
  if (probe_interval_ <= 0) return;
  probe_qdelay_.reserve(
      static_cast<std::size_t>(duration / probe_interval_) + 1);
}

void Recorder::on_delivery(const Packet& p, TimeNs dequeue_done) {
  delivered_[p.flow_id].add(dequeue_done, p.size_bytes);
  if (tracked_.count(p.flow_id)) {
    queue_delay_[p.flow_id].add(dequeue_done,
                                to_ms(dequeue_done - p.enqueued_at));
  }
}

void Recorder::on_drop(const Packet& p) {
  ++drops_[p.flow_id];
  ++total_drops_;
}

void Recorder::on_rtt_sample(FlowId id, TimeNs now, TimeNs rtt) {
  rtt_[id].add(now, to_ms(rtt));
}

void Recorder::on_completion(FlowId id, TimeNs when, TimeNs fct,
                             std::int64_t flow_bytes) {
  completions_.push_back({id, when, fct, flow_bytes});
}

const util::ByteCounter& Recorder::delivered(FlowId id) const {
  const auto it = delivered_.find(id);
  return it == delivered_.end() ? kEmptyCounter : it->second;
}

double Recorder::aggregate_rate_bps(const std::vector<FlowId>& ids, TimeNs t0,
                                    TimeNs t1) const {
  if (t1 <= t0) return 0.0;
  std::int64_t bytes = 0;
  for (FlowId id : ids) bytes += delivered(id).bytes_in(t0, t1);
  return static_cast<double>(bytes) * 8.0 / to_sec(t1 - t0);
}

const util::TimeSeries& Recorder::queue_delay(FlowId id) const {
  const auto it = queue_delay_.find(id);
  return it == queue_delay_.end() ? kEmptySeries : it->second;
}

const util::TimeSeries& Recorder::rtt_samples(FlowId id) const {
  const auto it = rtt_.find(id);
  return it == rtt_.end() ? kEmptySeries : it->second;
}

std::uint64_t Recorder::drops(FlowId id) const {
  const auto it = drops_.find(id);
  return it == drops_.end() ? 0 : it->second;
}

}  // namespace nimbus::sim
