// Send/receive rate measurement over the last n acknowledged packets,
// exactly as the paper's Eq. (2):
//
//   S = n_bytes / (s_{i+n} - s_i),   R = n_bytes / (r_{i+n} - r_i)
//
// where s_k is the send time of packet k and r_k the arrival time of its
// ACK.  Both rates are measured over the *same* n packets — the property the
// cross-traffic estimator (Eq. 1) depends on.  n is one window's worth of
// packets (section 3.4: "our implementation measures S and R over one RTT").
//
// rates() is queried on every ACK (Nimbus and BBR both read it through
// CcContext::send_rate_bps/recv_rate_bps), so the implementation is a
// power-of-two ring indexed by the global ack count, and each sample
// carries the running total of acked bytes: n_bytes over any window is one
// subtraction of two exact integer prefix sums instead of the reference
// implementation's O(n) re-summation.  The ring doubles until the 16384-
// sample history cap, after which on_ack overwrites the oldest slot —
// steady state touches no heap and rates() is O(1).  Results are
// bit-identical to the deque reference (ReferenceRateSampler below).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/time.h"

namespace nimbus::sim {

class RateSampler {
 public:
  struct Rates {
    double send_bps = 0.0;
    double recv_bps = 0.0;
    bool valid = false;
  };

  /// Records one acknowledged packet.
  void on_ack(TimeNs sent_at, TimeNs acked_at, std::uint32_t bytes);

  /// Rates over the most recent `n_packets` acked packets (clamped to what
  /// is available; invalid until at least `min_packets` have been seen).
  Rates rates(std::size_t n_packets) const;

  /// Convenience: rates over roughly one window (cwnd_bytes / mss packets).
  Rates rates_over_window(double cwnd_bytes, std::uint32_t mss) const;

  std::size_t history_size() const {
    return next_ < max_history_ ? static_cast<std::size_t>(next_)
                                : max_history_;
  }
  void set_min_packets(std::size_t n) { min_packets_ = n; }

 private:
  struct Sample {
    TimeNs sent_at;
    TimeNs acked_at;
    std::uint64_t cum_bytes;  // total acked bytes through this sample
  };

  void grow();

  std::vector<Sample> ring_;  // power-of-two size (or empty before first ack)
  std::uint64_t mask_ = 0;
  std::uint64_t next_ = 0;  // global index of the next sample
  std::uint64_t cum_bytes_ = 0;
  std::size_t max_history_ = 16384;
  std::size_t min_packets_ = 5;
};

/// The PR 2-era deque implementation, kept as the executable specification:
/// tests assert the ring sampler above returns bit-identical Rates under
/// randomized workloads, and bench_micro measures the per-ACK O(cwnd)
/// re-summation it pays.  Not used on any simulation path.
class ReferenceRateSampler {
 public:
  void on_ack(TimeNs sent_at, TimeNs acked_at, std::uint32_t bytes);
  RateSampler::Rates rates(std::size_t n_packets) const;
  RateSampler::Rates rates_over_window(double cwnd_bytes,
                                       std::uint32_t mss) const;
  std::size_t history_size() const { return samples_.size(); }
  void set_min_packets(std::size_t n) { min_packets_ = n; }

 private:
  struct Sample {
    TimeNs sent_at;
    TimeNs acked_at;
    std::uint32_t bytes;
  };
  std::deque<Sample> samples_;
  std::size_t max_history_ = 16384;
  std::size_t min_packets_ = 5;
};

}  // namespace nimbus::sim
