// Send/receive rate measurement over the last n acknowledged packets,
// exactly as the paper's Eq. (2):
//
//   S = n_bytes / (s_{i+n} - s_i),   R = n_bytes / (r_{i+n} - r_i)
//
// where s_k is the send time of packet k and r_k the arrival time of its
// ACK.  Both rates are measured over the *same* n packets — the property the
// cross-traffic estimator (Eq. 1) depends on.  n is one window's worth of
// packets (section 3.4: "our implementation measures S and R over one RTT").
#pragma once

#include <cstdint>
#include <deque>

#include "util/time.h"

namespace nimbus::sim {

class RateSampler {
 public:
  struct Rates {
    double send_bps = 0.0;
    double recv_bps = 0.0;
    bool valid = false;
  };

  /// Records one acknowledged packet.
  void on_ack(TimeNs sent_at, TimeNs acked_at, std::uint32_t bytes);

  /// Rates over the most recent `n_packets` acked packets (clamped to what
  /// is available; invalid until at least `min_packets` have been seen).
  Rates rates(std::size_t n_packets) const;

  /// Convenience: rates over roughly one window (cwnd_bytes / mss packets).
  Rates rates_over_window(double cwnd_bytes, std::uint32_t mss) const;

  std::size_t history_size() const { return samples_.size(); }
  void set_min_packets(std::size_t n) { min_packets_ = n; }

 private:
  struct Sample {
    TimeNs sent_at;
    TimeNs acked_at;
    std::uint32_t bytes;
  };
  std::deque<Sample> samples_;
  std::size_t max_history_ = 16384;
  std::size_t min_packets_ = 5;
};

}  // namespace nimbus::sim
