#include "sim/event_loop.h"

#include <limits>

#include "util/check.h"

namespace nimbus::sim {

EventId EventLoop::schedule(TimeNs t, Callback cb) {
  NIMBUS_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  const EventId id = next_id_++;
  heap_.push({t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void EventLoop::cancel(EventId id) { callbacks_.erase(id); }

void EventLoop::run_until(TimeNs t_end) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty()) {
    const HeapEntry top = heap_.top();
    if (top.time > t_end) break;
    heap_.pop();
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    now_ = top.time;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    ++processed_;
    cb();
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
}

void EventLoop::run() { run_until(std::numeric_limits<TimeNs>::max()); }

void Timer::arm(TimeNs at, EventLoop::Callback cb) {
  cancel();
  armed_ = true;
  deadline_ = at;
  pending_ = loop_->schedule(at, [this, cb = std::move(cb)]() {
    armed_ = false;
    cb();
  });
}

void Timer::cancel() {
  if (armed_) {
    loop_->cancel(pending_);
    armed_ = false;
  }
}

}  // namespace nimbus::sim
