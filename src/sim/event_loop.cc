#include "sim/event_loop.h"

#include <algorithm>
#include <limits>

namespace nimbus::sim {

EventLoop::EventLoop() { bucket_head_.fill(kNilNode); }

std::uint32_t EventLoop::acquire_slot(TimeNs t) {
  NIMBUS_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  if (free_head_ != kNoSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = slot_ref(s).next_free;
    return s;
  }
  NIMBUS_CHECK_MSG(total_slots_ <= kSlotMask, "event slot pool exhausted");
  if (total_slots_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return total_slots_++;
}

void EventLoop::fire_slot(Slot& slot, std::uint64_t id, TimeNs t) {
  now_ = t;
  slot.pending_id = 0;  // a self-cancel inside the callback is a no-op
  slot.extracted = false;
  --live_;
  ++processed_;
  obs_fired_.inc();
  // In-place invocation: chunked slots have stable addresses, so the
  // callback may grow the pools or the queue freely while running.  The
  // slot is not on the free list yet, so nothing can re-occupy it.
  slot.cb();
  slot.cb.reset();
  slot.next_free = free_head_;
  free_head_ = static_cast<std::uint32_t>(id & kSlotMask);
}

void EventLoop::release_slot(std::uint32_t s) {
  Slot& slot = slot_ref(s);
  slot.pending_id = 0;
  slot.extracted = false;
  slot.cb.reset();  // free for inline callables (no destructor work)
  slot.next_free = free_head_;
  free_head_ = s;
}

void EventLoop::wheel_insert(TimeNs t, std::uint64_t id,
                             std::uint64_t abs_bucket) {
  std::uint32_t n;
  if (node_free_ != kNilNode) {
    n = node_free_;
    node_free_ = pool_[n].next;
  } else {
    n = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  const std::uint64_t b = abs_bucket & kWheelMask;
  pool_[n] = {static_cast<std::uint64_t>(t), id, bucket_head_[b]};
  bucket_head_[b] = n;
  occ_[b >> 6] |= std::uint64_t{1} << (b & 63);
  ++wheel_count_;
  obs_wheel_inserts_.inc();
}

void EventLoop::enqueue_entry(TimeNs t, std::uint64_t id) {
  // Clamp to the cursor: after a run_until() boundary the cursor can sit
  // ahead of now(), and an entry bucketed below it could alias a bucket a
  // full wheel turn away.  Clamping is order-preserving — every bucket
  // below the cursor is empty, and buckets drain by smallest (time, seq)
  // key, so an early entry placed in the cursor bucket still fires first.
  const std::uint64_t ab = std::max(
      static_cast<std::uint64_t>(t) >> kBucketShift, cursor_);
  if (ab >= cursor_ + kWheelSize) {
    heap_push({pack_key(t, id)});
  } else {
    wheel_insert(t, id, ab);
  }
}

std::uint64_t EventLoop::next_nonempty_bucket() const {
  const std::uint64_t start = cursor_ & kWheelMask;
  std::uint64_t w = start >> 6;
  std::uint64_t word = occ_[w] & (~std::uint64_t{0} << (start & 63));
  while (word == 0) {
    w = (w + 1) & (kOccWords - 1);
    word = occ_[w];
  }
  const auto pos =
      (w << 6) | static_cast<std::uint64_t>(__builtin_ctzll(word));
  // Convert the circular position back to an absolute bucket index.
  const std::uint64_t base = cursor_ - start;
  return pos >= start ? base + pos : base + pos + kWheelSize;
}

// Eagerly unlinks the pending entry for `slot` if it lives in the wheel
// (far-heap entries are left behind as lazy tombstones — pull and pop drop
// them).  Keeping buckets tombstone-free bounds the drain scan by the real
// per-bucket concurrency: without this, a flow's per-ACK RTO rearms pile
// thousands of dead entries into one deadline bucket and the drain's
// min-scan degenerates quadratically.
void EventLoop::wheel_unlink_if_near(const Slot& slot, std::uint64_t id) {
  const std::uint64_t ab =
      std::max(slot.time >> kBucketShift, cursor_);
  if (ab >= cursor_ + kWheelSize) return;  // in the far heap
  const std::uint64_t b = ab & kWheelMask;
  std::uint32_t prev = kNilNode;
  for (std::uint32_t cur = bucket_head_[b]; cur != kNilNode;
       prev = cur, cur = pool_[cur].next) {
    if (pool_[cur].id != id) continue;
    if (prev == kNilNode) {
      bucket_head_[b] = pool_[cur].next;
    } else {
      pool_[prev].next = pool_[cur].next;
    }
    pool_[cur].next = node_free_;
    node_free_ = cur;
    --wheel_count_;
    if (bucket_head_[b] == kNilNode) {
      occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
    return;
  }
  NIMBUS_CHECK_MSG(false, "pending near event missing from its bucket");
}

void EventLoop::pull_far_into_window() {
  while (!heap_.empty()) {
    const TimeNs t = time_of(heap_[0].key);
    const std::uint64_t ab = static_cast<std::uint64_t>(t) >> kBucketShift;
    if (ab >= cursor_ + kWheelSize) break;
    const auto id = static_cast<std::uint64_t>(heap_[0].key);
    heap_pop_min();
    // Drop far tombstones here instead of carrying them into a bucket.
    if (slot_ref(static_cast<std::uint32_t>(id & kSlotMask)).pending_id ==
        id) {
      wheel_insert(t, id, ab);
    }
  }
}

void EventLoop::heap_push(Entry e) {
  obs_heap_inserts_.inc();
  // Hole-based sift-up: shift parents down and place the new entry once.
  heap_.push_back(e);
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (heap_[parent].key <= e.key) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

void EventLoop::heap_pop_min() {
  // Hole-based sift-down of the last entry from the root.
  const std::size_t n = heap_.size() - 1;
  const Entry last = heap_[n];
  heap_.pop_back();
  if (n == 0) return;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_[c].key < heap_[best].key) best = c;
    }
    if (last.key <= heap_[best].key) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = last;
}

void EventLoop::cancel(EventId id) {
  const auto s = static_cast<std::uint32_t>(id & kSlotMask);
  if (id == 0 || s >= total_slots_) return;
  Slot& slot = slot_ref(s);
  if (slot.pending_id != id) return;  // fired, cancelled, or stale
  // Events sitting in the drain batch are already unlinked from the wheel.
  if (!slot.extracted) wheel_unlink_if_near(slot, id);
  release_slot(s);
  --live_;
}

EventId EventLoop::reschedule(EventId id, TimeNs t) {
  const auto s = static_cast<std::uint32_t>(id & kSlotMask);
  NIMBUS_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  NIMBUS_CHECK_MSG(id != 0 && s < total_slots_ &&
                       slot_ref(s).pending_id == id,
                   "reschedule of a fired or cancelled event");
  Slot& slot = slot_ref(s);
  if (slot.extracted) {
    slot.extracted = false;  // batch entry: already off the wheel
  } else {
    wheel_unlink_if_near(slot, id);  // far entries become lazy tombstones
  }
  const EventId nid = make_event_id(s);
  slot.pending_id = nid;
  slot.time = static_cast<std::uint64_t>(t);
  enqueue_entry(t, nid);
  return nid;
}

void EventLoop::set_run_budget(std::uint64_t max_events,
                               double max_wall_seconds) {
  budget_stop_ = BudgetStop::kNone;
  budget_events_end_ = max_events == 0 ? 0 : processed_ + max_events;
  budget_wall_armed_ = max_wall_seconds > 0.0;
  if (budget_wall_armed_) {
    budget_wall_deadline_ =
        // detlint:allow(R1): watchdog wall-deadline arm; never feeds sim state
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(max_wall_seconds));
  }
  if (budget_events_end_ == 0 && !budget_wall_armed_) {
    budget_check_next_ = ~std::uint64_t{0};
    return;
  }
  budget_check_next_ = processed_ + kBudgetCheckInterval;
  if (budget_events_end_ != 0 && budget_events_end_ < budget_check_next_) {
    budget_check_next_ = budget_events_end_;
  }
}

void EventLoop::check_budget() {
  if (budget_events_end_ != 0 && processed_ >= budget_events_end_) {
    budget_stop_ = BudgetStop::kEvents;
    stopped_ = true;
    return;
  }
  if (budget_wall_armed_ &&
      // detlint:allow(R1): watchdog wall-deadline poll; never feeds sim state
      std::chrono::steady_clock::now() >= budget_wall_deadline_) {
    budget_stop_ = BudgetStop::kWall;
    stopped_ = true;
    return;
  }
  budget_check_next_ = processed_ + kBudgetCheckInterval;
  if (budget_events_end_ != 0 && budget_events_end_ < budget_check_next_) {
    budget_check_next_ = budget_events_end_;
  }
}

// NIMBUS_HOT_PATH begin
void EventLoop::run_until(TimeNs t_end) {
  stopped_ = false;
  while (!stopped_) {
    // Move the window to the next non-empty bucket (or jump it to the far
    // heap's earliest entry), then migrate far events that the slide
    // exposed.
    if (wheel_count_ > 0) {
      cursor_ = next_nonempty_bucket();
    } else if (!heap_.empty()) {
      cursor_ =
          static_cast<std::uint64_t>(time_of(heap_[0].key)) >> kBucketShift;
    } else {
      break;  // queue empty
    }
    pull_far_into_window();

    // Drain bucket `cursor_` in (time, seq) order.  The common case
    // (distinct deadlines) is exactly the PR 2 path: unlink the
    // smallest-key node and fire it in place.  When two consecutive
    // extractions carry the *same* deadline, the bucket holds an
    // equal-time run — a phase start waking every flow at once — and the
    // drain switches to batch mode: unlink every remaining entry with
    // that deadline in one pass and fire them in seq order (ids are
    // monotone in seq, so sorting ids sorts seqs).  A k-event burst thus
    // costs two scans plus an O(k log k) sort instead of the k
    // min-extraction scans (O(k^2)) the per-event path would pay, while
    // distinct-deadline traffic keeps the per-event path's exact cost.
    // Callbacks may append to this same bucket (they cannot make anything
    // earlier pending) with strictly larger seqs, so firing an extracted
    // run to completion before re-scanning preserves the exact global
    // (time, seq) order.
    const std::uint64_t b = cursor_ & kWheelMask;
    bool reached_end = false;
    std::uint64_t last_fired_time = 0;
    bool have_fired = false;
    while (!stopped_) {
      const std::uint32_t head = bucket_head_[b];
      if (head == kNilNode) break;
      // Smallest (time, seq) key in the bucket, as a single 128-bit scan.
      std::uint32_t best = head;
      std::uint32_t best_prev = kNilNode;
      unsigned __int128 best_key = node_key(pool_[head]);
      for (std::uint32_t prev = head, cur = pool_[head].next;
           cur != kNilNode; prev = cur, cur = pool_[cur].next) {
        const unsigned __int128 k = node_key(pool_[cur]);
        if (k < best_key) {
          best_key = k;
          best = cur;
          best_prev = prev;
        }
      }
      const std::uint64_t t_min = pool_[best].time;
      if (static_cast<TimeNs>(t_min) > t_end) {
        reached_end = true;
        break;
      }

      if (!have_fired || t_min != last_fired_time) {
        // Distinct-deadline fast path (the PR 2 per-event drain).
        const std::uint64_t id = pool_[best].id;
        if (best_prev == kNilNode) {
          bucket_head_[b] = pool_[best].next;
        } else {
          pool_[best_prev].next = pool_[best].next;
        }
        pool_[best].next = node_free_;
        node_free_ = best;
        --wheel_count_;
        Slot& slot = slot_ref(static_cast<std::uint32_t>(id & kSlotMask));
        if (slot.pending_id != id) continue;  // cancelled / rescheduled
        have_fired = true;
        last_fired_time = t_min;
        fire_slot(slot, id, static_cast<TimeNs>(t_min));
        if (processed_ >= budget_check_next_) check_budget();
        continue;
      }

      // Same deadline twice in a row: equal-time run detected (its first
      // event just fired through the fast path above).  Extract the rest.
      batch_.clear();
      {
        // Pass 2: unlink the whole run.  Tombstones (cancelled or
        // rescheduled ids) are dropped here; live entries are marked
        // extracted so cancel/reschedule from inside a batch callback
        // know the wheel no longer holds them.
        std::uint32_t prev = kNilNode;
        std::uint32_t cur = bucket_head_[b];
        while (cur != kNilNode) {
          const std::uint32_t next = pool_[cur].next;
          if (pool_[cur].time == t_min) {
            const std::uint64_t id = pool_[cur].id;
            if (prev == kNilNode) {
              bucket_head_[b] = next;
            } else {
              pool_[prev].next = next;
            }
            pool_[cur].next = node_free_;
            node_free_ = cur;
            --wheel_count_;
            Slot& slot =
                slot_ref(static_cast<std::uint32_t>(id & kSlotMask));
            if (slot.pending_id == id) {
              slot.extracted = true;
              // detlint:allow(R5): batch_ is reused; no alloc past high-water
              batch_.push_back(id);
            }
          } else {
            prev = cur;
          }
          cur = next;
        }
        std::sort(batch_.begin(), batch_.end());
        // +1: the run's first event fired through the fast path above.
        obs_batch_size_.observe(batch_.size() + 1);
      }

      for (std::size_t i = 0; i < batch_.size(); ++i) {
        const std::uint64_t id = batch_[i];
        Slot& slot = slot_ref(static_cast<std::uint32_t>(id & kSlotMask));
        if (slot.pending_id != id) continue;  // cancelled mid-batch
        fire_slot(slot, id, static_cast<TimeNs>(t_min));
        if (processed_ >= budget_check_next_) check_budget();
        if (stopped_) {
          // stop() mid-run: re-link the unfired remainder so it is still
          // pending for the next run_until call.
          for (std::size_t j = i + 1; j < batch_.size(); ++j) {
            const std::uint64_t rid = batch_[j];
            Slot& rslot =
                slot_ref(static_cast<std::uint32_t>(rid & kSlotMask));
            if (rslot.pending_id != rid) continue;
            rslot.extracted = false;
            wheel_insert(static_cast<TimeNs>(t_min), rid, cursor_);
          }
          break;
        }
      }
    }
    if (bucket_head_[b] == kNilNode) {
      occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
    if (reached_end) break;
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
}
// NIMBUS_HOT_PATH end

void EventLoop::run() { run_until(std::numeric_limits<TimeNs>::max()); }

void EventLoop::attach_metrics(obs::MetricsRegistry* m) {
  if (m == nullptr) {
    obs_fired_ = {};
    obs_wheel_inserts_ = {};
    obs_heap_inserts_ = {};
    obs_batch_size_ = {};
    return;
  }
  obs_fired_ = m->counter("loop.events_fired");
  obs_wheel_inserts_ = m->counter("loop.wheel_inserts");
  obs_heap_inserts_ = m->counter("loop.far_heap_inserts");
  obs_batch_size_ = m->histogram("loop.batch_size");
}

void Timer::arm(TimeNs at, EventLoop::Callback cb) {
  cb_ = std::move(cb);
  deadline_ = at;
  if (armed_) {
    // Fast path: keep the slot and trampoline, move only the queue entry.
    pending_ = loop_->reschedule(pending_, at);
    return;
  }
  armed_ = true;
  pending_ = loop_->schedule(at, Fire{this});
}

void Timer::cancel() {
  if (armed_) {
    loop_->cancel(pending_);
    armed_ = false;
    cb_.reset();
  }
}

void Timer::fire() {
  armed_ = false;
  // Move out before invoking: the callback may re-arm this timer.
  EventLoop::Callback cb = std::move(cb_);
  cb();
}

}  // namespace nimbus::sim
