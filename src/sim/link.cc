#include "sim/link.h"

#include <algorithm>

#include "util/check.h"

namespace nimbus::sim {

BottleneckLink::BottleneckLink(EventLoop* loop, double rate_bps,
                               std::unique_ptr<QueueDisc> qdisc)
    : loop_(loop), rate_bps_(rate_bps), qdisc_(std::move(qdisc)),
      loss_rng_(7) {
  NIMBUS_CHECK(rate_bps_ > 0);
  NIMBUS_CHECK(qdisc_ != nullptr);
}

void BottleneckLink::set_random_loss(double prob, std::uint64_t seed) {
  NIMBUS_CHECK(prob >= 0.0 && prob < 1.0);
  // Seed 0 is the spec layer's "derive me" sentinel and the old implicit
  // default was a shared-stream hazard; both are rejected here so every
  // lossy link runs on an explicitly derived stream.
  NIMBUS_CHECK_MSG(seed != 0, "set_random_loss needs an explicit nonzero seed");
  loss_prob_ = prob;
  loss_rng_ = util::Rng(seed);
}

void BottleneckLink::set_impairment(std::unique_ptr<ImpairmentStage> stage) {
  NIMBUS_CHECK_MSG(impairment_ == nullptr, "impairment already installed");
  NIMBUS_CHECK_MSG(!busy_ && loop_->now() == 0,
                   "install the impairment stage before traffic starts");
  NIMBUS_CHECK(stage != nullptr);
  impairment_ = std::move(stage);
}

void BottleneckLink::set_policer(const PolicerConfig& cfg) {
  policer_ = cfg;
  policer_tokens_ = static_cast<double>(cfg.burst_bytes);
  policer_last_refill_ = loop_->now();
}

bool BottleneckLink::policer_admits(const Packet& p) {
  if (!policer_.enabled) return true;
  const TimeNs now = loop_->now();
  policer_tokens_ += bytes_in(now - policer_last_refill_, policer_.rate_bps);
  policer_tokens_ =
      std::min(policer_tokens_, static_cast<double>(policer_.burst_bytes));
  policer_last_refill_ = now;
  if (policer_tokens_ < static_cast<double>(p.size_bytes)) return false;
  policer_tokens_ -= static_cast<double>(p.size_bytes);
  return true;
}

void BottleneckLink::enqueue(Packet p) {
  obs_enqueues_.inc();
  if (impairment_ != nullptr) {
    obs_impairment_decisions_.inc();
    const ImpairmentStage::Decision d = impairment_->on_packet(loop_->now());
    if (d.copies == 0) {
      obs_drop_impairment_.inc();
      drop(p);
      return;
    }
    for (int i = 0; i < d.copies; ++i) {
      if (d.delay[i] == 0) {
        admit(p);
      } else {
        loop_->schedule_in(d.delay[i], Admit{this, p});
      }
    }
    return;
  }
  admit(p);
}

void BottleneckLink::admit(Packet p) {
  if (loss_prob_ > 0.0 && loss_rng_.bernoulli(loss_prob_)) {
    obs_drop_random_.inc();
    drop(p);
    return;
  }
  if (!policer_admits(p)) {
    obs_drop_policer_.inc();
    drop(p);
    return;
  }
  p.enqueued_at = loop_->now();
  if (!qdisc_->enqueue(p, loop_->now())) {
    obs_drop_queue_.inc();
    drop(p);
    return;
  }
  if (!busy_) start_transmission();
}

void BottleneckLink::drop(const Packet& p) {
  ++dropped_packets_;
  if (on_drop_) on_drop_(p);
}

void BottleneckLink::start_transmission() {
  auto next = qdisc_->dequeue(loop_->now());
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const TimeNs t = tx_time(next->size_bytes, rate_bps_);
  busy_time_ += t;
  in_flight_ = *next;
  const EventId id = loop_->schedule_in(t, TxDone{this});
  if (schedule_ != nullptr) {
    tx_done_id_ = id;
    tx_done_time_ = loop_->now() + t;
    tx_checkpoint_ = loop_->now();
    tx_remaining_bytes_ = static_cast<double>(in_flight_.size_bytes);
  }
}

void BottleneckLink::finish_transmission() {
  const Packet p = in_flight_;
  delivered_bytes_ += p.size_bytes;
  ++delivered_packets_;
  if (on_delivery_) on_delivery_(p, loop_->now());
  start_transmission();
}

void BottleneckLink::set_rate_bps(double rate_bps) {
  NIMBUS_CHECK(rate_bps > 0);
  rate_bps_ = rate_bps;
}

void BottleneckLink::set_schedule(std::unique_ptr<RateSchedule> schedule) {
  NIMBUS_CHECK_MSG(schedule_ == nullptr, "schedule already installed");
  NIMBUS_CHECK_MSG(!busy_ && loop_->now() == 0,
                   "install the schedule before traffic starts");
  NIMBUS_CHECK(schedule != nullptr);
  schedule_ = std::move(schedule);
  rate_bps_ = schedule_->rate_at(loop_->now());
  const TimeNs next = schedule_->next_change_after(loop_->now());
  if (next != RateSchedule::kNoChange) {
    loop_->schedule(next, ScheduleTick{this});
  }
}

void BottleneckLink::on_schedule_tick() {
  const TimeNs now = loop_->now();
  const double new_rate = schedule_->rate_at(now);
  if (new_rate != rate_bps_) apply_rate_change(new_rate);
  const TimeNs next = schedule_->next_change_after(now);
  if (next != RateSchedule::kNoChange) {
    loop_->schedule(next, ScheduleTick{this});
  }
}

void BottleneckLink::apply_rate_change(double new_rate_bps) {
  NIMBUS_CHECK(new_rate_bps > 0);
  obs_mu_changes_.inc();
  if (obs_trace_.active()) {
    obs::TraceEvent e;
    e.t = loop_->now();
    e.kind = static_cast<std::uint16_t>(obs::TraceKind::kMuChange);
    e.v0 = new_rate_bps;
    e.v1 = rate_bps_;
    obs_trace_.emit(e);
  }
  if (busy_) {
    // Retire the bytes serialized at the old rate since the last
    // checkpoint, then retime the in-flight TxDone so the residual bytes
    // finish at the new rate.  busy_time_ was charged the whole packet at
    // the start-of-transmission rate; correct it by the deadline shift.
    const TimeNs now = loop_->now();
    tx_remaining_bytes_ -= bytes_in(now - tx_checkpoint_, rate_bps_);
    if (tx_remaining_bytes_ < 0.0) tx_remaining_bytes_ = 0.0;
    tx_checkpoint_ = now;
    const TimeNs remaining = static_cast<TimeNs>(
        tx_remaining_bytes_ * 8.0 / new_rate_bps *
            static_cast<double>(kNanosPerSec) +
        0.5);
    busy_time_ += (now + remaining) - tx_done_time_;
    tx_done_time_ = now + remaining;
    tx_done_id_ = loop_->reschedule(tx_done_id_, tx_done_time_);
  }
  rate_bps_ = new_rate_bps;
}

void BottleneckLink::attach_telemetry(obs::MetricsRegistry* m,
                                      obs::Trace trace) {
  obs_trace_ = trace;
  if (m == nullptr) return;
  obs_enqueues_ = m->counter("link.enqueues");
  obs_impairment_decisions_ = m->counter("link.impairment_decisions");
  obs_drop_impairment_ = m->counter("link.drops.impairment");
  obs_drop_random_ = m->counter("link.drops.random_loss");
  obs_drop_policer_ = m->counter("link.drops.policer");
  obs_drop_queue_ = m->counter("link.drops.queue");
  obs_mu_changes_ = m->counter("link.mu_changes");
}

TimeNs BottleneckLink::current_queue_delay() const {
  return static_cast<TimeNs>(static_cast<double>(qdisc_->bytes()) * 8.0 /
                             rate_bps_ * static_cast<double>(kNanosPerSec));
}

double BottleneckLink::utilization() const {
  const TimeNs now = loop_->now();
  if (now <= 0) return 0.0;
  return to_sec(busy_time_) / to_sec(now);
}

}  // namespace nimbus::sim
