#include "sim/link.h"

#include <algorithm>

#include "util/check.h"

namespace nimbus::sim {

BottleneckLink::BottleneckLink(EventLoop* loop, double rate_bps,
                               std::unique_ptr<QueueDisc> qdisc)
    : loop_(loop), rate_bps_(rate_bps), qdisc_(std::move(qdisc)),
      loss_rng_(7) {
  NIMBUS_CHECK(rate_bps_ > 0);
  NIMBUS_CHECK(qdisc_ != nullptr);
}

void BottleneckLink::set_random_loss(double prob, std::uint64_t seed) {
  NIMBUS_CHECK(prob >= 0.0 && prob < 1.0);
  loss_prob_ = prob;
  loss_rng_ = util::Rng(seed);
}

void BottleneckLink::set_policer(const PolicerConfig& cfg) {
  policer_ = cfg;
  policer_tokens_ = static_cast<double>(cfg.burst_bytes);
  policer_last_refill_ = loop_->now();
}

bool BottleneckLink::policer_admits(const Packet& p) {
  if (!policer_.enabled) return true;
  const TimeNs now = loop_->now();
  policer_tokens_ += bytes_in(now - policer_last_refill_, policer_.rate_bps);
  policer_tokens_ =
      std::min(policer_tokens_, static_cast<double>(policer_.burst_bytes));
  policer_last_refill_ = now;
  if (policer_tokens_ < static_cast<double>(p.size_bytes)) return false;
  policer_tokens_ -= static_cast<double>(p.size_bytes);
  return true;
}

void BottleneckLink::enqueue(Packet p) {
  if (loss_prob_ > 0.0 && loss_rng_.bernoulli(loss_prob_)) {
    drop(p);
    return;
  }
  if (!policer_admits(p)) {
    drop(p);
    return;
  }
  p.enqueued_at = loop_->now();
  if (!qdisc_->enqueue(p, loop_->now())) {
    drop(p);
    return;
  }
  if (!busy_) start_transmission();
}

void BottleneckLink::drop(const Packet& p) {
  ++dropped_packets_;
  if (on_drop_) on_drop_(p);
}

void BottleneckLink::start_transmission() {
  auto next = qdisc_->dequeue(loop_->now());
  if (!next) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const TimeNs t = tx_time(next->size_bytes, rate_bps_);
  busy_time_ += t;
  in_flight_ = *next;
  loop_->schedule_in(t, TxDone{this});
}

void BottleneckLink::finish_transmission() {
  const Packet p = in_flight_;
  delivered_bytes_ += p.size_bytes;
  ++delivered_packets_;
  if (on_delivery_) on_delivery_(p, loop_->now());
  start_transmission();
}

void BottleneckLink::set_rate_bps(double rate_bps) {
  NIMBUS_CHECK(rate_bps > 0);
  rate_bps_ = rate_bps;
}

TimeNs BottleneckLink::current_queue_delay() const {
  return static_cast<TimeNs>(static_cast<double>(qdisc_->bytes()) * 8.0 /
                             rate_bps_ * static_cast<double>(kNanosPerSec));
}

double BottleneckLink::utilization() const {
  const TimeNs now = loop_->now();
  if (now <= 0) return 0.0;
  return to_sec(busy_time_) / to_sec(now);
}

}  // namespace nimbus::sim
