// PIE (Proportional Integral controller Enhanced) AQM, RFC 8033 (simplified).
//
// Used by the App. E.2 robustness experiments: the paper evaluates elasticity
// detection when the bottleneck runs PIE at two target delays.
//
// Simplifications relative to the RFC: no burst allowance auto-tuning beyond
// the initial burst window, departure rate taken from the configured link
// rate (the link is work-conserving and fully utilised in all experiments
// that use PIE).
#pragma once

#include <cstdint>

#include "sim/queue_disc.h"
#include "util/ring_deque.h"
#include "util/rng.h"

namespace nimbus::sim {

class PieQueue : public QueueDisc {
 public:
  struct Config {
    std::int64_t capacity_bytes = 0;   // hard limit (tail drop beyond this)
    double link_rate_bps = 0.0;        // departure rate for delay estimation
    TimeNs target_delay = from_ms(15); // QDELAY_REF
    TimeNs update_interval = from_ms(15);  // T_UPDATE
    double alpha = 0.125;              // SI units per RFC 8033 autotuning off
    double beta = 1.25;
    TimeNs burst_allowance = from_ms(150);
    std::uint64_t seed = 42;
  };

  explicit PieQueue(const Config& config);

  bool enqueue(const Packet& p, TimeNs now) override;
  std::optional<Packet> dequeue(TimeNs now) override;
  std::int64_t bytes() const override { return bytes_; }
  std::size_t packets() const override { return q_.size(); }

  double drop_probability() const { return drop_prob_; }
  TimeNs estimated_delay() const;

 private:
  void maybe_update(TimeNs now);

  Config cfg_;
  // Ring buffer, not std::deque: the FIFO's steady-state churn must not
  // touch the heap (the DropTail queue made the same move in PR 3).
  util::RingDeque<Packet> q_;
  std::int64_t bytes_ = 0;
  double drop_prob_ = 0.0;
  TimeNs last_update_ = 0;
  TimeNs prev_delay_ = 0;
  TimeNs burst_left_;
  util::Rng rng_;
};

}  // namespace nimbus::sim
