// Queue disciplines for the bottleneck link.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/packet.h"
#include "util/ring_deque.h"
#include "util/time.h"

namespace nimbus::sim {

/// Abstract queueing discipline.  The link calls enqueue() on packet arrival
/// (false = dropped) and dequeue() when the transmitter goes idle.
class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  virtual bool enqueue(const Packet& p, TimeNs now) = 0;
  virtual std::optional<Packet> dequeue(TimeNs now) = 0;

  virtual std::int64_t bytes() const = 0;
  virtual std::size_t packets() const = 0;
  bool empty() const { return packets() == 0; }
};

/// Drop-tail FIFO bounded in bytes.  Backed by a RingDeque: a std::deque
/// frees and reallocates a storage block every ~10 packets of steady FIFO
/// churn, which would break the simulator's steady-state zero-allocation
/// guarantee (and costs allocator traffic on the busiest per-packet path).
class DropTailQueue : public QueueDisc {
 public:
  explicit DropTailQueue(std::int64_t capacity_bytes);

  bool enqueue(const Packet& p, TimeNs now) override;
  std::optional<Packet> dequeue(TimeNs now) override;
  std::int64_t bytes() const override { return bytes_; }
  std::size_t packets() const override { return q_.size(); }
  std::int64_t capacity_bytes() const { return capacity_; }

 private:
  std::int64_t capacity_;
  std::int64_t bytes_ = 0;
  util::RingDeque<Packet> q_;
};

/// Capacity helper: buffer sized in units of bandwidth-delay product.
std::int64_t buffer_bytes_for_bdp(double link_rate_bps, TimeNs rtt,
                                  double bdp_multiple);

}  // namespace nimbus::sim
