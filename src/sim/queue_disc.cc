#include "sim/queue_disc.h"

#include "util/check.h"

namespace nimbus::sim {

DropTailQueue::DropTailQueue(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  NIMBUS_CHECK(capacity_bytes > 0);
}

bool DropTailQueue::enqueue(const Packet& p, TimeNs /*now*/) {
  if (bytes_ + p.size_bytes > capacity_) return false;
  bytes_ += p.size_bytes;
  q_.push_back(p);
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(TimeNs /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.front();
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

std::int64_t buffer_bytes_for_bdp(double link_rate_bps, TimeNs rtt,
                                  double bdp_multiple) {
  const double bdp_bytes = link_rate_bps / 8.0 * to_sec(rtt);
  auto bytes = static_cast<std::int64_t>(bdp_bytes * bdp_multiple);
  // Always leave room for at least a couple of full-size packets.
  return bytes < 3000 ? 3000 : bytes;
}

}  // namespace nimbus::sim
