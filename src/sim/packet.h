// Packet representation for the discrete-event simulator.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace nimbus::sim {

using FlowId = std::uint32_t;

struct Packet {
  FlowId flow_id = 0;
  std::uint64_t seq = 0;       // per-flow packet sequence number
  std::uint32_t size_bytes = 0;
  TimeNs sent_at = 0;          // transport send timestamp (echoed in the ACK)
  TimeNs enqueued_at = 0;      // stamped by the bottleneck on arrival
  bool is_transport = false;   // participates in the reliable/ACK path
  bool is_retransmit = false;
};

/// ACK carried back to a transport sender.  The simulator models the reverse
/// path as uncongested: by default ACKs take the flow's propagation delay
/// and are never dropped (standard congestion-control-study assumption; the
/// paper's experiments likewise have an uncongested ACK path).  A reverse
/// ImpairmentStage (sim/impairment.h), when installed on the Network, can
/// drop, duplicate, jitter, or black out the ACK path.
struct Ack {
  FlowId flow_id = 0;
  std::uint64_t seq = 0;       // the specific packet being acknowledged
  std::uint64_t cum_ack = 0;   // highest in-order seq received (+1 semantics:
                               // all seqs <= cum_ack have been received)
  bool cum_valid = false;      // false until the first in-order packet
  TimeNs data_sent_at = 0;     // echo of Packet::sent_at (RTT measurement)
  std::uint32_t bytes = 0;
};

}  // namespace nimbus::sim
