// WAN workload example (the section 8.1 scenario): a bulk transfer
// sharing a 96 Mbit/s bottleneck with heavy-tailed cross traffic at 50%
// load.  Compares Nimbus with Cubic and Vegas on throughput and delay, and
// shows the elasticity metric tracking the workload's elastic phases.
//
//   $ ./examples/wan_workload [duration_seconds]
#include <cstdio>
#include <cstdlib>

#include "core/nimbus.h"
#include "exp/ground_truth.h"
#include "exp/schemes.h"
#include "exp/summary.h"
#include "sim/network.h"
#include "traffic/flow_workload.h"

using namespace nimbus;

namespace {

struct Outcome {
  exp::FlowSummary summary;
  double accuracy;  // only meaningful for nimbus
};

Outcome run(const std::string& scheme, TimeNs duration) {
  const double mu = 96e6;
  sim::Network net(mu, sim::buffer_bytes_for_bdp(mu, from_ms(50), 2.0));

  core::Nimbus* nimbus = nullptr;
  sim::TransportFlow::Config fc;
  fc.id = 1;
  fc.rtt_prop = from_ms(50);
  net.recorder().track_flow(1);
  auto algo = exp::make_scheme(scheme, mu);
  if (scheme == "nimbus") nimbus = dynamic_cast<core::Nimbus*>(algo.get());
  net.add_flow(fc, std::move(algo));

  traffic::FlowWorkload::Config wc;
  wc.offered_load_fraction = 0.5;
  wc.seed = 1234;
  traffic::FlowWorkload workload(&net, wc);

  exp::ModeLog mode_log;
  if (nimbus) exp::attach_nimbus_logger(nimbus, &mode_log);

  net.run_until(duration);

  Outcome out;
  out.summary = exp::summarize_flow(net.recorder(), 1, from_sec(10),
                                    duration);
  out.accuracy = 0;
  if (nimbus) {
    // Score mode decisions against the workload's byte-weighted truth in
    // clear-cut seconds.
    int agree = 0, total = 0;
    for (int t = 10; t < static_cast<int>(to_sec(duration)); ++t) {
      const TimeNs a = from_sec(t), b = from_sec(t + 1);
      const double frac =
          workload.elastic_byte_fraction(net.recorder(), a, b);
      if (frac > 0.3 && frac < 0.7) continue;
      ++total;
      if ((mode_log.fraction_competitive(a, b) > 0.5) == (frac >= 0.7)) {
        ++agree;
      }
    }
    out.accuracy = total ? static_cast<double>(agree) / total : 0.0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 60.0;
  const TimeNs duration = from_sec(seconds);
  std::printf("scheme       rate    mean RTT  median RTT   p95 RTT\n");
  Outcome nimbus{}, cubic{}, vegas{};
  for (const std::string scheme : {"nimbus", "cubic", "vegas"}) {
    const auto o = run(scheme, duration);
    std::printf("%-10s %6.1f M %8.1f ms %8.1f ms %8.1f ms\n",
                scheme.c_str(), o.summary.mean_rate_mbps,
                o.summary.mean_rtt_ms, o.summary.median_rtt_ms,
                o.summary.p95_rtt_ms);
    if (scheme == "nimbus") nimbus = o;
    if (scheme == "cubic") cubic = o;
    if (scheme == "vegas") vegas = o;
  }
  std::printf("\nnimbus classification accuracy (clear-cut seconds): %.0f%%\n",
              nimbus.accuracy * 100);
  std::printf(
      "shape: nimbus ~ cubic's rate (%.0f%% of it) at %.0f ms lower median "
      "RTT;\n       vegas cedes %.0f%% of nimbus's rate\n",
      100 * nimbus.summary.mean_rate_mbps / cubic.summary.mean_rate_mbps,
      cubic.summary.median_rtt_ms - nimbus.summary.median_rtt_ms,
      100 * (1 - vegas.summary.mean_rate_mbps /
                     nimbus.summary.mean_rate_mbps));
  return 0;
}
