// WAN workload example (the section 8.1 scenario): a bulk transfer
// sharing a 96 Mbit/s bottleneck with heavy-tailed cross traffic at 50%
// load.  Compares Nimbus with Cubic and Vegas on throughput and delay, and
// shows the elasticity metric tracking the workload's elastic phases.
//
// Each scheme is one declarative ScenarioSpec (exp/scenario.h); the three
// runs go through the ParallelRunner (exp/runner.h), so on a multi-core
// host the comparison takes one scheme's wall-clock time.
//
//   $ ./examples/wan_workload [duration_seconds]
#include <cstdio>
#include <cstdlib>

#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/summary.h"

using namespace nimbus;

namespace {

struct Outcome {
  exp::FlowSummary summary;
  double accuracy;  // only meaningful for nimbus
};

exp::ScenarioSpec make_spec(const std::string& scheme, TimeNs duration) {
  exp::ScenarioSpec spec;
  spec.name = "wan/" + scheme;
  spec.mu_bps = 96e6;
  spec.duration = duration;
  spec.protagonist.scheme = scheme;
  spec.workload_enabled = true;
  spec.workload.offered_load_fraction = 0.5;
  spec.workload.seed = 1234;
  return spec;
}

Outcome collect(const exp::ScenarioSpec& spec, exp::ScenarioRun& run) {
  const auto& rec = run.built.net->recorder();
  Outcome out;
  out.summary = exp::summarize_flow(rec, 1, from_sec(10), spec.duration);
  out.accuracy = 0;
  if (run.built.nimbus != nullptr) {
    // Score mode decisions against the workload's byte-weighted truth in
    // clear-cut seconds.
    int agree = 0, total = 0;
    for (int t = 10; t < static_cast<int>(to_sec(spec.duration)); ++t) {
      const TimeNs a = from_sec(t), b = from_sec(t + 1);
      const double frac =
          run.built.workload->elastic_byte_fraction(rec, a, b);
      if (frac > 0.3 && frac < 0.7) continue;
      ++total;
      if ((run.mode_log->fraction_competitive(a, b) > 0.5) == (frac >= 0.7)) {
        ++agree;
      }
    }
    out.accuracy = total ? static_cast<double>(agree) / total : 0.0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 60.0;
  const TimeNs duration = from_sec(seconds);
  const std::vector<std::string> schemes = {"nimbus", "cubic", "vegas"};
  std::vector<exp::ScenarioSpec> specs;
  for (const auto& s : schemes) specs.push_back(make_spec(s, duration));

  std::printf("scheme       rate    mean RTT  median RTT   p95 RTT\n");
  const auto outcomes = exp::run_scenarios<Outcome>(
      specs, collect, {},
      [&](std::size_t i, Outcome& o) {
        std::printf("%-10s %6.1f M %8.1f ms %8.1f ms %8.1f ms\n",
                    schemes[i].c_str(), o.summary.mean_rate_mbps,
                    o.summary.mean_rtt_ms, o.summary.median_rtt_ms,
                    o.summary.p95_rtt_ms);
      });

  const Outcome& nimbus = outcomes[0];
  const Outcome& cubic = outcomes[1];
  const Outcome& vegas = outcomes[2];
  std::printf("\nnimbus classification accuracy (clear-cut seconds): %.0f%%\n",
              nimbus.accuracy * 100);
  std::printf(
      "shape: nimbus ~ cubic's rate (%.0f%% of it) at %.0f ms lower median "
      "RTT;\n       vegas cedes %.0f%% of nimbus's rate\n",
      100 * nimbus.summary.mean_rate_mbps / cubic.summary.mean_rate_mbps,
      cubic.summary.median_rtt_ms - nimbus.summary.median_rtt_ms,
      100 * (1 - vegas.summary.mean_rate_mbps /
                     nimbus.summary.mean_rate_mbps));
  return 0;
}
