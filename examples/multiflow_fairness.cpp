// Multi-flow coordination (paper section 6 / Fig. 16): several Nimbus
// flows share a bottleneck using the pulser/watcher protocol — one flow
// pulses, the rest read its mode from the FFT of their own receive rate,
// with a decentralized election and no explicit communication.
//
//   $ ./examples/multiflow_fairness [n_flows]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/nimbus.h"
#include "sim/network.h"
#include "util/stats.h"

using namespace nimbus;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 3;
  const double mu = 96e6;
  sim::Network net(mu, sim::buffer_bytes_for_bdp(mu, from_ms(50), 2.0));

  std::vector<core::Nimbus*> flows;
  for (int i = 0; i < n; ++i) {
    core::Nimbus::Config cfg;
    cfg.known_mu_bps = mu;
    cfg.multiflow = true;  // enable the pulser/watcher protocol
    auto algo = std::make_unique<core::Nimbus>(cfg);
    flows.push_back(algo.get());
    sim::TransportFlow::Config fc;
    fc.id = static_cast<sim::FlowId>(i + 1);
    fc.rtt_prop = from_ms(50);
    fc.seed = 100 + static_cast<std::uint64_t>(i);
    net.add_flow(fc, std::move(algo));
  }

  std::printf("time   roles   modes   rates (Mbps)%*s  qdelay  Jain\n",
              4 * n - 12 > 0 ? 4 * n - 12 : 0, "");
  for (int t = 10; t <= 120; t += 10) {
    net.run_until(from_sec(t));
    const TimeNs a = from_sec(t - 10), b = from_sec(t);
    std::string roles, modes;
    std::vector<double> rates;
    for (int i = 0; i < n; ++i) {
      roles += flows[i]->role() == core::Nimbus::Role::kPulser ? 'P' : 'w';
      modes += flows[i]->mode() == core::Nimbus::Mode::kDelay ? 'd' : 'C';
      rates.push_back(net.recorder()
                          .delivered(static_cast<sim::FlowId>(i + 1))
                          .rate_bps(a, b));
    }
    std::printf("%3d s  %-6s  %-6s  ", t, roles.c_str(), modes.c_str());
    for (double r : rates) std::printf("%5.1f ", r / 1e6);
    std::printf(" %5.1f ms  %.2f\n",
                net.recorder().probed_queue_delay().mean_in(a, b).value_or(0.0),
                util::jain_fairness(rates));
  }
  std::printf(
      "\nExpected shape: exactly one 'P' (pulser) after the election\n"
      "settles, all flows in 'd' (delay mode) with ~13 ms of queueing,\n"
      "fair sharing (Jain index near 1), and full link utilization —\n"
      "coordination without any explicit communication channel.\n");
  return 0;
}
