// Video-streaming scenario (the Fig. 11 motivation): a bulk transfer
// shares a home link with a DASH video stream.  Whether the right thing to
// do is "back off and keep delay low" or "compete" depends on the video's
// bitrate relative to the link — exactly what elasticity detection decides.
//
//   $ ./examples/video_streaming
#include <cstdio>

#include "core/nimbus.h"
#include "exp/ground_truth.h"
#include "exp/summary.h"
#include "sim/network.h"
#include "traffic/video_source.h"

using namespace nimbus;

namespace {

void run_case(const char* label, double video_bitrate_bps) {
  const double mu = 48e6;
  sim::Network net(mu, sim::buffer_bytes_for_bdp(mu, from_ms(50), 2.0));

  core::Nimbus::Config cfg;
  cfg.known_mu_bps = mu;
  auto algo = std::make_unique<core::Nimbus>(cfg);
  core::Nimbus* nimbus = algo.get();
  sim::TransportFlow::Config fc;
  fc.id = 1;
  fc.rtt_prop = from_ms(50);
  net.recorder().track_flow(1);
  net.add_flow(fc, std::move(algo));

  traffic::VideoSource::Config vc;
  vc.bitrate_bps = video_bitrate_bps;
  auto video = std::make_unique<traffic::VideoSource>(&net, vc);
  const sim::FlowId video_id = video->id();
  net.add_source(std::move(video));

  exp::ModeLog mode_log;
  exp::attach_nimbus_logger(nimbus, &mode_log);
  net.run_until(from_sec(60));

  const auto bulk =
      exp::summarize_flow(net.recorder(), 1, from_sec(10), from_sec(60));
  const double video_rate =
      net.recorder().delivered(video_id).rate_bps(from_sec(10),
                                                  from_sec(60)) /
      1e6;
  const double comp =
      mode_log.fraction_competitive(from_sec(10), from_sec(60));
  std::printf(
      "%-18s video %4.1f Mbps | bulk %5.1f Mbps @ %5.1f ms RTT | "
      "mode: %s (%.0f%% competitive)\n",
      label, video_rate, bulk.mean_rate_mbps, bulk.mean_rtt_ms,
      comp > 0.5 ? "TCP-competitive" : "delay-control", comp * 100);
}

}  // namespace

int main() {
  std::printf("Bulk Nimbus transfer sharing a 48 Mbit/s link with DASH "
              "video:\n\n");
  run_case("1080p (8 Mbps):", 8e6);    // app-limited -> inelastic
  run_case("4K (40 Mbps):", 40e6);     // network-limited -> elastic
  std::printf(
      "\nThe 1080p stream idles between chunks (application-limited), so\n"
      "Nimbus holds delay-control mode: full residual throughput at low\n"
      "delay, and the video is untouched.  The 4K stream is backlogged\n"
      "(network-limited, ACK-clocked), so Nimbus competes for its fair\n"
      "share instead of being starved like a pure delay scheme would be.\n");
  return 0;
}
