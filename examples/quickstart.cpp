// Quickstart: the smallest end-to-end use of the library.
//
// Builds a 48 Mbit/s bottleneck, runs one Nimbus flow against cross
// traffic that changes from inelastic (CBR) to elastic (Cubic) halfway
// through, and prints what the elasticity detector concluded and what it
// did about it.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "cc/cubic.h"
#include "core/nimbus.h"
#include "exp/ground_truth.h"
#include "sim/network.h"
#include "traffic/raw_sources.h"

using namespace nimbus;

int main() {
  // 1. A network: 48 Mbit/s bottleneck, 50 ms propagation RTT, 2 BDP of
  //    DropTail buffering (the paper's standard setup, Fig. 1).
  const double mu = 48e6;
  const TimeNs rtt = from_ms(50);
  sim::Network net(mu, sim::buffer_bytes_for_bdp(mu, rtt, 2.0));

  // 2. The protagonist: a backlogged Nimbus flow.  We tell it the link
  //    rate (controlled experiment); leave known_mu_bps = 0 to have it
  //    estimated online.
  core::Nimbus::Config cfg;
  cfg.known_mu_bps = mu;
  auto algo = std::make_unique<core::Nimbus>(cfg);
  core::Nimbus* nimbus = algo.get();

  sim::TransportFlow::Config fc;
  fc.id = 1;
  fc.rtt_prop = rtt;
  net.recorder().track_flow(fc.id);
  net.add_flow(fc, std::move(algo));

  // 3. Cross traffic: inelastic 24 Mbit/s CBR for the first 60 s, then a
  //    long-running Cubic flow for the next 60 s.
  traffic::CbrSource::Config cbr;
  cbr.id = 2;
  cbr.rate_bps = 24e6;
  cbr.stop_time = from_sec(60);
  net.add_source(
      std::make_unique<traffic::CbrSource>(&net.loop(), &net.link(), cbr));

  sim::TransportFlow::Config cub;
  cub.id = 3;
  cub.rtt_prop = rtt;
  cub.start_time = from_sec(60);
  net.add_flow(cub, std::make_unique<cc::Cubic>());

  // 4. Observe Nimbus's decisions through its status stream.
  exp::ModeLog mode_log;
  util::TimeSeries eta_log;
  exp::attach_nimbus_logger(nimbus, &mode_log, &eta_log);

  // 5. Run 120 simulated seconds and report per-10s stats.
  std::printf(
      "time     mode       eta   nimbus_rate  cross_rate  queue_delay\n");
  for (int t = 10; t <= 120; t += 10) {
    net.run_until(from_sec(t));
    const TimeNs a = from_sec(t - 10), b = from_sec(t);
    const double comp = mode_log.fraction_competitive(a, b);
    std::printf(
        "%3d s    %-9s %5.2f  %7.1f Mbps %7.1f Mbps %8.1f ms\n", t,
        comp > 0.5 ? "compete" : "delay", eta_log.mean_in(a, b).value_or(0.0),
        net.recorder().delivered(1).rate_bps(a, b) / 1e6,
        (net.recorder().delivered(2).rate_bps(a, b) +
         net.recorder().delivered(3).rate_bps(a, b)) /
            1e6,
        net.recorder().probed_queue_delay().mean_in(a, b).value_or(0.0));
  }

  std::printf(
      "\nExpected shape: delay mode at ~12.5 ms queueing for the CBR hour,"
      "\nthen a switch to TCP-competitive mode within ~5-10 s of the Cubic"
      "\narriving, holding roughly the 24 Mbit/s fair share.\n");
  return 0;
}
