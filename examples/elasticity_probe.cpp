// The elasticity detector as a measurement tool (the use case sketched in
// the paper's introduction): probe a path, report whether the competing
// cross traffic is elastic, and show the spectrum the conclusion is based
// on — without running a full Nimbus controller policy.
//
//   $ ./examples/elasticity_probe [elastic|inelastic|mixed]
#include <cstdio>
#include <cstring>

#include "cc/cubic.h"
#include "core/nimbus.h"
#include "sim/network.h"
#include "traffic/raw_sources.h"

using namespace nimbus;

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "mixed";
  const double mu = 96e6;
  sim::Network net(mu, sim::buffer_bytes_for_bdp(mu, from_ms(50), 2.0));

  // The probe: a Nimbus instance pinned to delay mode (we only use its
  // estimator + detector, not the mode-switching policy).
  core::Nimbus::Config cfg;
  cfg.known_mu_bps = mu;
  cfg.eta_threshold = 1e9;  // never switch; observe only
  auto algo = std::make_unique<core::Nimbus>(cfg);
  core::Nimbus* probe = algo.get();
  sim::TransportFlow::Config fc;
  fc.id = 1;
  fc.rtt_prop = from_ms(50);
  net.add_flow(fc, std::move(algo));

  // The cross traffic under test.
  if (kind == "elastic" || kind == "mixed") {
    sim::TransportFlow::Config cb;
    cb.id = 2;
    cb.rtt_prop = from_ms(50);
    cb.seed = 7;
    net.add_flow(cb, std::make_unique<cc::Cubic>());
  }
  if (kind == "inelastic" || kind == "mixed") {
    traffic::PoissonSource::Config pc;
    pc.id = 3;
    pc.mean_rate_bps = kind == "mixed" ? 24e6 : 48e6;
    net.add_source(std::make_unique<traffic::PoissonSource>(
        &net.loop(), &net.link(), pc));
  }

  util::TimeSeries etas;
  probe->set_status_handler([&](const core::Nimbus::Status& s) {
    if (s.detector_ready) etas.add(s.now, s.eta_raw);
  });
  net.run_until(from_sec(30));

  // Verdict.
  util::Percentiles p;
  p.add_all(etas.values_in(from_sec(10), from_sec(30)));
  std::printf("cross traffic under test: %s\n", kind.c_str());
  std::printf("estimated cross rate:     %.1f Mbit/s\n",
              probe->last_z_bps() / 1e6);
  std::printf("eta (p25/p50/p75):        %.2f / %.2f / %.2f\n",
              p.percentile(0.25), p.median(), p.percentile(0.75));
  std::printf("verdict:                  %s (threshold 2.0)\n\n",
              p.median() >= 2.0 ? "ELASTIC cross traffic present"
                                : "no elastic cross traffic detected");

  // The evidence: an ASCII rendering of the z(t) spectrum around f_p.
  const auto spec = probe->detector().full_spectrum();
  std::printf("z(t) magnitude spectrum (*: pulse frequency band):\n");
  for (std::size_t k = 1; k < spec.bins() && spec.frequency(k) <= 15.0;
       ++k) {
    const double f = spec.frequency(k);
    const int bar = static_cast<int>(spec.magnitude[k] / 1e6 * 40);
    std::printf("%5.1f Hz %c |%.*s\n", f,
                (f > 4.7 && f < 5.3) ? '*' : ' ',
                bar > 60 ? 60 : bar,
                "############################################################");
  }
  return 0;
}
